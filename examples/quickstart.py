#!/usr/bin/env python3
"""Quickstart: store a set in the BloomDB engine, then sample and rebuild it.

Walks the full happy path of the library through the
:class:`~repro.api.BloomDB` facade:

1. plan an engine from a desired sampling accuracy (Section 5.4) — one
   call resolves the filter size, tree depth and hash family,
2. store a secret set under a name,
3. draw near-uniform samples (Algorithm 1) — single and one-pass multi,
4. reconstruct the set (Section 6),
5. compare op counts against the DictionaryAttack baseline.

Run:  python examples/quickstart.py [--namespace 50000] [--set-size 500]

At namespaces much larger than the planned filter size the upper tree
levels saturate and the paper's thresholded descent loses its signal
(every estimate clamps to zero); pass ``--descent floored`` for the
starvation-free policy in that regime.
"""

import argparse

from repro import BloomDB, DictionaryAttack, uniform_query_set


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--namespace", type=int, default=50_000,
                        help="size of the id namespace M")
    parser.add_argument("--set-size", type=int, default=500,
                        help="number of elements in the secret set n")
    parser.add_argument("--accuracy", type=float, default=0.95,
                        help="desired sampling accuracy (Section 5.4)")
    parser.add_argument("--tree", choices=("static", "pruned", "dynamic"),
                        default="static", help="tree backend variant")
    parser.add_argument("--descent", choices=("threshold", "floored"),
                        default="threshold",
                        help="branch policy: the paper's thresholded rule, "
                             "or the starvation-free floored variant")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # 1. Plan the engine: desired accuracy -> m, depth, family, tree —
    #    all owned by one facade object.
    db = BloomDB.plan(
        namespace_size=args.namespace,
        accuracy=args.accuracy,
        set_size=args.set_size,
        family="murmur3",
        tree=args.tree,
        descent=args.descent,
        seed=args.seed,
    )
    print(f"planned: m={db.params.m} bits, depth={db.params.depth}, "
          f"leaf capacity M_perp={db.params.leaf_capacity}, "
          f"tree memory {db.params.memory_mb:.2f} MB "
          f"(backend: {db.config.tree})")

    # 2. Someone hands us a set we store as a Bloom filter.
    secret = uniform_query_set(args.namespace, args.set_size, rng=args.seed)
    db.add_set("secret", secret)
    truth = set(secret.tolist())
    query = db.filter("secret")
    print(f"stored filter: {query.count_ones()} of {query.m} bits set "
          f"(expected FPP {query.expected_fpp(args.set_size):.2e})")

    # 3. Sample from the hidden set.
    result = db.sample("secret")
    print(f"\none sample: {result.value} "
          f"(true element: {result.value in truth}) — cost "
          f"{result.ops.intersections} intersections + "
          f"{result.ops.memberships} membership queries")

    many = db.sample("secret", r=20, replacement=False)
    hits = sum(v in truth for v in many.values)
    print(f"20 samples in one pass: {hits}/20 true elements, "
          f"{many.ops.intersections} intersections total")

    # 4. Reconstruct the whole set.
    reconstruction = db.reconstruct("secret")
    recovered = set(reconstruction.elements.tolist())
    print(f"\nreconstruction: {len(recovered)} elements "
          f"({len(truth & recovered)}/{len(truth)} of the true set) using "
          f"{reconstruction.ops.memberships} membership queries")
    exact = db.reconstruct("secret", exhaustive=True)
    print(f"exhaustive reconstruction: {exact.size} elements "
          f"(recall 100% by construction, "
          f"{exact.ops.memberships} membership queries)")

    # 5. The baseline pays the whole namespace for every single sample.
    attack = DictionaryAttack(args.namespace, rng=args.seed)
    da = attack.sample(query)
    print(f"\nDictionaryAttack sample: {da.value} — cost "
          f"{da.ops.memberships} membership queries "
          f"(vs {result.ops.memberships} for the BloomSampleTree)")


if __name__ == "__main__":
    main()
