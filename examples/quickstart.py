#!/usr/bin/env python3
"""Quickstart: store a set in a Bloom filter, then sample and rebuild it.

Walks the full happy path of the library:

1. plan tree parameters from a desired sampling accuracy (Section 5.4),
2. build the BloomSampleTree once,
3. store a secret set in a query Bloom filter,
4. draw near-uniform samples (Algorithm 1) — single and one-pass multi,
5. reconstruct the set (Section 6),
6. compare op counts against the DictionaryAttack baseline.

Run:  python examples/quickstart.py [--namespace 100000] [--set-size 500]
"""

import argparse

from repro import (
    BloomFilter,
    BloomSampleTree,
    BSTReconstructor,
    BSTSampler,
    DictionaryAttack,
    family_for_parameters,
    plan_tree,
    uniform_query_set,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--namespace", type=int, default=100_000,
                        help="size of the id namespace M")
    parser.add_argument("--set-size", type=int, default=500,
                        help="number of elements in the secret set n")
    parser.add_argument("--accuracy", type=float, default=0.95,
                        help="desired sampling accuracy (Section 5.4)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # 1. Plan: desired accuracy -> filter size m, tree depth, leaf size.
    params = plan_tree(args.namespace, args.set_size, args.accuracy)
    print(f"planned: m={params.m} bits, depth={params.depth}, "
          f"leaf capacity M_perp={params.leaf_capacity}, "
          f"tree memory {params.memory_mb:.2f} MB")

    # 2. Build the tree once; it serves every future query filter.
    family = family_for_parameters(params, "murmur3", seed=args.seed)
    tree = BloomSampleTree.build(args.namespace, params.depth, family)

    # 3. Someone hands us a Bloom filter of a set we cannot see.
    secret = uniform_query_set(args.namespace, args.set_size, rng=args.seed)
    query = BloomFilter.from_items(secret, family)
    print(f"query filter: {query.count_ones()} of {query.m} bits set "
          f"(expected FPP {query.expected_fpp(args.set_size):.2e})")

    # 4. Sample from the hidden set.
    sampler = BSTSampler(tree, rng=args.seed)
    truth = set(secret.tolist())
    result = sampler.sample(query)
    print(f"\none sample: {result.value} "
          f"(true element: {result.value in truth}) — cost "
          f"{result.ops.intersections} intersections + "
          f"{result.ops.memberships} membership queries")

    many = sampler.sample_many(query, 20, replacement=False)
    hits = sum(v in truth for v in many.values)
    print(f"20 samples in one pass: {hits}/20 true elements, "
          f"{many.ops.intersections} intersections total")

    # 5. Reconstruct the whole set.
    reconstruction = BSTReconstructor(tree).reconstruct(query)
    recovered = set(reconstruction.elements.tolist())
    print(f"\nreconstruction: {len(recovered)} elements "
          f"({len(truth & recovered)}/{len(truth)} of the true set) using "
          f"{reconstruction.ops.memberships} membership queries")
    exact = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
    print(f"exhaustive reconstruction: {exact.size} elements "
          f"(recall 100% by construction, "
          f"{exact.ops.memberships} membership queries)")

    # 6. The baseline pays the whole namespace for every single sample.
    attack = DictionaryAttack(args.namespace, rng=args.seed)
    da = attack.sample(query)
    print(f"\nDictionaryAttack sample: {da.value} — cost "
          f"{da.ops.memberships} membership queries "
          f"(vs {result.ops.memberships} for the BloomSampleTree)")


if __name__ == "__main__":
    main()
