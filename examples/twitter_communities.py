#!/usr/bin/env python3
"""Sparse namespaces: sampling hashtag audiences with a pruned tree.

Recreates the paper's Section 8 scenario on the synthetic Twitter
dataset: user ids occupy a small, clustered fraction of a huge id
namespace; each hashtag's audience (the users who tweeted it) is stored
as a Bloom filter; an analyst samples audience members — e.g. to survey
a community — without access to the raw sets.

Shows the three Section 8 effects:

* the Pruned-BloomSampleTree is far smaller than the full tree,
* sampling accuracy *beats* the planned target (the effective namespace
  is only the occupied ids),
* the structure grows dynamically as new accounts appear.

Run:  python examples/twitter_communities.py [--namespace 2200000]
"""

import argparse

import numpy as np

from repro import BloomDB, SyntheticTwitterDataset
from repro.experiments.figures import full_tree_memory_mb


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--namespace", type=int, default=2_200_000,
                        help="id namespace (paper: 2.2 billion)")
    parser.add_argument("--users", type=int, default=72_000,
                        help="occupied user ids (paper: 7.2 million)")
    parser.add_argument("--hashtags", type=int, default=60)
    parser.add_argument("--depth", type=int, default=7)
    parser.add_argument("--accuracy", type=float, default=0.8,
                        help="planned accuracy (the paper fixes 0.8)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = SyntheticTwitterDataset.generate(
        namespace_size=args.namespace,
        num_users=args.users,
        num_hashtags=args.hashtags,
        rng=args.seed,
    )
    print(f"dataset: {dataset.num_users} users in a namespace of "
          f"{dataset.namespace_size} ({dataset.occupancy:.2%} occupied), "
          f"{len(dataset.hashtag_audiences)} hashtag audiences")

    # Plan m against the full namespace, exactly as the paper does; the
    # pruned backend is selected purely by the engine config, and the
    # existing user base seeds it through the variant's bulk build.
    db = BloomDB.plan(
        namespace_size=args.namespace,
        accuracy=args.accuracy,
        set_size=1_000,
        family="murmur3",
        tree="pruned",
        depth=args.depth,
        seed=args.seed,
        occupied=dataset.user_ids,
    )
    full_mb = full_tree_memory_mb(args.namespace, args.depth, db.params.m)
    print(f"pruned tree: {db.tree.num_nodes} nodes, "
          f"{db.tree.memory_bytes / 1e6:.2f} MB "
          f"(full tree would be {full_mb:.2f} MB)")

    # Store the five most popular hashtag audiences as named sets and
    # sample each in one batched call.
    audiences = sorted(dataset.hashtag_audiences, key=len, reverse=True)[:5]
    for i, audience in enumerate(audiences):
        db.add_set(f"tag-{i:03d}", audience)
    batch = db.sample_many(r=1)
    print(f"\n{'hashtag':>8}  {'audience':>8}  {'sample':>9}  "
          f"{'true?':>5}  {'memberships':>11}")
    for i, audience in enumerate(audiences):
        result = batch[f"tag-{i:03d}"]
        value = result.values[0] if result.values else None
        is_true = value in set(audience.tolist())
        print(f"#tag-{i:03d}  {len(audience):>8}  {str(value):>9}  "
              f"{str(is_true):>5}  {result.ops.memberships:>11}")

    # Measured accuracy across many rounds beats the planned target.
    rng = np.random.default_rng(args.seed)
    hits = produced = 0
    for __ in range(300):
        i = int(rng.integers(0, len(audiences)))
        result = db.sample(f"tag-{i:03d}")
        if result.value is not None:
            produced += 1
            hits += result.value in set(audiences[i].tolist())
    print(f"\nmeasured accuracy over {produced} samples: "
          f"{hits / produced:.3f} (planned {args.accuracy} — the sparse "
          f"effective namespace boosts it, Fig. 15)")

    # New accounts arrive: the tree grows along single root-leaf paths.
    before = db.tree.num_nodes
    newcomers = rng.integers(0, args.namespace, size=500, dtype=np.uint64)
    db.insert_ids(newcomers)
    print(f"\ndynamic growth: +500 users -> {db.tree.num_nodes - before} "
          f"new nodes ({db.tree.num_nodes} total), occupancy now "
          f"{db.tree.occupancy_fraction:.2%}")


if __name__ == "__main__":
    main()
