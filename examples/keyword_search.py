#!/usr/bin/env python3
"""Information retrieval: a Bloom-filter inverted index you can sample.

Section 3.2's second named application: for each keyword, store "the
list of documents where [it] occurs" as a Bloom filter.  On top of the
compact index this example runs the operations the paper enables:

* estimate a keyword's document frequency from its filter alone,
* sample a random matching document (uniform result snippets / auditing),
* answer conjunctive (AND) queries by intersection sketch + verification,
* reconstruct a rare keyword's full postings list.

Run:  python examples/keyword_search.py [--documents 100000]
"""

import argparse

from repro import BloomDB
from repro.workloads.documents import SyntheticCorpus, conjunctive_sample


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=100_000)
    parser.add_argument("--keywords", type=int, default=120)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    corpus = SyntheticCorpus.generate(num_documents=args.documents,
                                      num_keywords=args.keywords,
                                      rng=args.seed)
    print(f"corpus: {corpus.num_documents} documents, "
          f"{corpus.num_keywords} keywords, document frequencies "
          f"{corpus.document_frequency(corpus.keywords[0])} (head) .. "
          f"{corpus.document_frequency(corpus.keywords[-1])} (tail)")

    # Size the filters for a mid-size postings list; one engine owns the
    # planner, family, tree and the index itself.
    typical = corpus.document_frequency(
        corpus.keywords[len(corpus.keywords) // 2])
    index = BloomDB.plan(
        namespace_size=args.documents,
        accuracy=0.95,
        set_size=typical,
        family="murmur3",
        seed=args.seed,
    )
    for keyword in corpus.keywords:
        index.add_set(keyword, corpus.postings[keyword])
    print(f"index: {len(index)} postings filters, "
          f"{index.store.nbytes / 1e6:.2f} MB + "
          f"{index.tree.memory_bytes / 1e6:.2f} MB "
          f"tree (m={index.params.m}, depth={index.params.depth})")

    # Document-frequency estimation straight from the filters.
    print("\nestimated vs true document frequency:")
    for keyword in (corpus.keywords[0], corpus.keywords[20],
                    corpus.keywords[-1]):
        estimate = index.filter(keyword).estimate_cardinality()
        true_df = corpus.document_frequency(keyword)
        print(f"  {keyword}: ~{estimate:7.0f}  (true {true_df})")

    # Sample matching documents for a mid-frequency keyword.
    keyword = corpus.keywords[10]
    truth = set(corpus.postings[keyword].tolist())
    samples = [index.sample(keyword) for __ in range(5)]
    print(f"\nrandom documents containing {keyword!r}:")
    for result in samples:
        marker = "true match" if result.value in truth else "false positive"
        print(f"  doc {result.value} ({marker}, "
              f"{result.ops.memberships} membership queries)")

    # Conjunctive query: documents containing BOTH head keywords.
    from repro.workloads.documents import conjunctive_precision_estimate

    pair = [corpus.keywords[0], corpus.keywords[1]]
    joint = corpus.documents_matching(pair)
    predicted = conjunctive_precision_estimate(index, pair)
    print(f"\nAND query {pair}: {joint.size} true matches, "
          f"predicted sketch precision {predicted:.2f}")
    confirmed = 0
    for __ in range(10):
        result = conjunctive_sample(index, pair)
        if result.value is not None:
            confirmed += result.value in set(joint.tolist())
    print(f"conjunctive samples: {confirmed}/10 true joint matches "
          f"(rest are one-sided false positives of the AND sketch)")

    # Reconstruct a rare keyword's postings entirely.
    rare = corpus.keywords[-1]
    result = index.reconstruct(rare, exhaustive=True)
    true_docs = set(corpus.postings[rare].tolist())
    got = set(result.elements.tolist())
    print(f"\nreconstructed postings of rare keyword {rare!r}: "
          f"{len(got)} docs ({len(true_docs & got)}/{len(true_docs)} true, "
          f"{len(got - true_docs)} false positives)")


if __name__ == "__main__":
    main()
