#!/usr/bin/env python3
"""Graph databases: adjacency lists as Bloom filters, sampled and rebuilt.

The paper's framework (Section 3.2) names graph databases as a primary
application: store each vertex's adjacency list as a Bloom filter and
answer "are u, v adjacent?" in O(1) space-efficiently.  This example adds
the paper's new capabilities on top:

* *random-neighbour sampling* (the building block of random walks and
  PageRank-style estimation) via the BloomSampleTree,
* *adjacency-list reconstruction* to recover the neighbourhood of a
  vertex of interest,

and validates both against the ground-truth networkx graph.  Vertex ids
are clustered (community structure), which is exactly the regime where
the tree prunes hardest.

Run:  python examples/graph_adjacency.py [--vertices 20000]
"""

import argparse

import networkx as nx
import numpy as np

from repro import (
    BloomFilter,
    BloomSampleTree,
    BSTReconstructor,
    BSTSampler,
    family_for_parameters,
    plan_tree,
)


def build_community_graph(num_vertices: int, seed: int) -> nx.Graph:
    """A relaxed-caveman graph: dense communities of contiguous ids."""
    community_size = 50
    communities = max(2, num_vertices // community_size)
    graph = nx.relaxed_caveman_graph(communities, community_size, p=0.05,
                                     seed=seed)
    return graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=20_000)
    parser.add_argument("--accuracy", type=float, default=0.95)
    parser.add_argument("--walk-length", type=int, default=12)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    graph = build_community_graph(args.vertices, args.seed)
    namespace = graph.number_of_nodes()
    degrees = [d for __, d in graph.degree()]
    typical_degree = int(np.median(degrees))
    print(f"graph: {namespace} vertices, {graph.number_of_edges()} edges, "
          f"median degree {typical_degree}")

    # One tree serves every adjacency filter in the database.
    params = plan_tree(namespace, max(typical_degree, 10), args.accuracy)
    family = family_for_parameters(params, "murmur3", seed=args.seed)
    tree = BloomSampleTree.build(namespace, params.depth, family)
    print(f"tree: depth {params.depth}, m={params.m} bits per filter, "
          f"{params.memory_mb:.2f} MB")

    # The "graph database": vertex -> Bloom filter of its neighbours.
    adjacency = {
        v: BloomFilter.from_items(
            np.array(sorted(graph.neighbors(v)), dtype=np.uint64), family)
        for v in graph.nodes
    }
    filter_mb = sum(f.nbytes for f in adjacency.values()) / 1e6
    print(f"adjacency filters: {filter_mb:.1f} MB total")

    # Random walk using only the compact filters.
    sampler = BSTSampler(tree, rng=args.seed)
    rng = np.random.default_rng(args.seed)
    vertex = int(rng.integers(0, namespace))
    walk = [vertex]
    valid_steps = 0
    for __ in range(args.walk_length):
        step = sampler.sample(adjacency[vertex])
        if step.value is None:
            break
        valid_steps += graph.has_edge(vertex, step.value)
        vertex = step.value
        walk.append(vertex)
    print(f"\nrandom walk: {' -> '.join(map(str, walk))}")
    print(f"{valid_steps}/{len(walk) - 1} steps follow true edges")

    # Reconstruct a vertex's neighbourhood from its filter alone.
    target = max(graph.nodes, key=graph.degree)
    true_neighbours = set(graph.neighbors(target))
    result = BSTReconstructor(tree).reconstruct(adjacency[target])
    recovered = set(result.elements.tolist())
    print(f"\nreconstructing neighbours of hub vertex {target} "
          f"(degree {len(true_neighbours)}):")
    print(f"  recovered {len(recovered)} candidates, "
          f"{len(true_neighbours & recovered)} true neighbours "
          f"({len(true_neighbours & recovered) / len(true_neighbours):.0%} "
          f"recall) with {result.ops.memberships} membership queries "
          f"(namespace is {namespace})")


if __name__ == "__main__":
    main()
