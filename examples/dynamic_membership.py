#!/usr/bin/env python3
"""Dynamic membership: communities that gain *and* lose members.

The paper motivates Bloom-filter sampling with "dynamic, online
communities" — yet its structures only grow.  This example uses the
library's extensions to run the full lifecycle:

* a ``DynamicBloomSampleTree`` (counting filters at the nodes) tracks the
  population of active account ids; deactivated accounts are *removed*
  and empty subtrees detached,
* a ``FilterStore`` holds one Bloom filter per community and answers
  sampling / reconstruction / cross-community queries through the tree,
* union and intersection sampling pick members of merged or overlapping
  communities.

Run:  python examples/dynamic_membership.py [--namespace 300000]
"""

import argparse

import numpy as np

from repro import (
    DynamicBloomSampleTree,
    FilterStore,
    create_family,
    plan_tree,
    uniform_query_set,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--namespace", type=int, default=300_000)
    parser.add_argument("--population", type=int, default=12_000)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    params = plan_tree(args.namespace, 1_000, 0.9)
    family = create_family("murmur3", params.k, params.m,
                           namespace_size=args.namespace, seed=args.seed)

    # Active account ids occupy a sliver of the namespace.
    population = uniform_query_set(args.namespace, args.population, rng=rng)
    tree = DynamicBloomSampleTree.build(population, args.namespace,
                                        params.depth, family)
    print(f"population: {len(tree.occupied)} active ids "
          f"({tree.occupancy_fraction:.2%} of the namespace), "
          f"{tree.num_nodes} tree nodes, "
          f"{tree.memory_bytes / 1e6:.2f} MB")

    # Communities are subsets of the population, stored as filters.
    store = FilterStore(family, tree=tree, rng=args.seed)
    for name, size in (("gamers", 3_000), ("chefs", 2_000),
                       ("cyclists", 1_500)):
        members = rng.choice(population, size=size, replace=False)
        store.create(name, members)
    # Overlap: some gamers also cook.
    both = rng.choice(store.reconstruct("gamers",
                                        exhaustive=True).elements, 400)
    store.add("chefs", both)
    print(f"store: {store.names()}, {store.nbytes / 1e3:.0f} kB of filters")

    # Sample members; advertise to the union; find the overlap.
    print(f"\na random gamer:            {store.sample('gamers').value}")
    print(f"a random gamer-or-chef:    {store.sample_union(['gamers', 'chefs']).value}")
    overlap = store.sample_intersection(["gamers", "chefs"])
    print(f"a random gamer-and-chef:   {overlap.value} "
          f"(intersection sketch; Eq. (1) false overlaps possible)")

    # Churn: 20% of accounts deactivate, new ones register.
    leavers = rng.choice(population, size=args.population // 5,
                         replace=False)
    tree.remove_many(leavers)
    taken = set(tree.occupied.tolist()) | set(leavers.tolist())
    newcomers = []
    while len(newcomers) < 500:
        candidate = int(rng.integers(0, args.namespace))
        if candidate not in taken:
            taken.add(candidate)
            newcomers.append(candidate)
            tree.insert(candidate)
    print(f"\nafter churn (-{len(leavers)}, +{len(newcomers)}): "
          f"{len(tree.occupied)} active ids, {tree.num_nodes} nodes, "
          f"{tree.memory_bytes / 1e6:.2f} MB")

    # Sampling still works and leavers can no longer be produced: the
    # tree's candidate space is the *live* population.
    gamers = set(store.reconstruct("gamers", exhaustive=True)
                 .elements.tolist())
    gone = set(leavers.tolist())
    assert not (gamers & gone), "reconstruction returned a deactivated id"
    print(f"gamers still reachable:    {len(gamers)} "
          f"(deactivated members excluded by construction)")
    sample = store.sample("gamers")
    print(f"a random remaining gamer:  {sample.value}")


if __name__ == "__main__":
    main()
