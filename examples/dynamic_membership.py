#!/usr/bin/env python3
"""Dynamic membership: communities that gain *and* lose members.

The paper motivates Bloom-filter sampling with "dynamic, online
communities" — yet its structures only grow.  This example runs the full
lifecycle through a single ``tree="dynamic"`` :class:`~repro.api.BloomDB`
engine:

* the engine's DynamicBloomSampleTree (counting filters at the nodes)
  tracks the population of active account ids; deactivated accounts are
  *retired* and empty subtrees detached,
* one Bloom filter per community, stored under its name, answers
  sampling / reconstruction / cross-community queries through the tree,
* union and intersection sampling pick members of merged or overlapping
  communities.

Run:  python examples/dynamic_membership.py [--namespace 300000]
"""

import argparse

import numpy as np

from repro import BloomDB, uniform_query_set


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--namespace", type=int, default=300_000)
    parser.add_argument("--population", type=int, default=12_000)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)

    # One engine owns the planner, family, dynamic tree and filter store.
    db = BloomDB.plan(
        namespace_size=args.namespace,
        accuracy=0.9,
        set_size=1_000,
        family="murmur3",
        tree="dynamic",
        seed=args.seed,
    )

    # Active account ids occupy a sliver of the namespace.
    population = uniform_query_set(args.namespace, args.population, rng=rng)
    db.insert_ids(population)
    print(f"population: {len(db.occupied)} active ids "
          f"({len(db.occupied) / args.namespace:.2%} of the namespace), "
          f"{db.tree.num_nodes} tree nodes, "
          f"{db.tree.memory_bytes / 1e6:.2f} MB")

    # Communities are subsets of the population, stored as named filters.
    for name, size in (("gamers", 3_000), ("chefs", 2_000),
                       ("cyclists", 1_500)):
        members = rng.choice(population, size=size, replace=False)
        db.add_set(name, members)
    # Overlap: some gamers also cook.
    both = rng.choice(db.reconstruct("gamers",
                                     exhaustive=True).elements, 400)
    db.extend_set("chefs", both)
    print(f"store: {db.names()}, {db.store.nbytes / 1e3:.0f} kB of filters")

    # Sample members; advertise to the union; find the overlap.
    print(f"\na random gamer:            {db.sample('gamers').value}")
    print(f"a random gamer-or-chef:    "
          f"{db.sample_union(['gamers', 'chefs']).value}")
    overlap = db.sample_intersection(["gamers", "chefs"])
    print(f"a random gamer-and-chef:   {overlap.value} "
          f"(intersection sketch; Eq. (1) false overlaps possible)")

    # One batched call samples every community with a merged op report.
    batch = db.sample_many(r=5)
    print(f"batched sample_many(r=5):  "
          f"{ {name: vals[:2] for name, vals in batch.values.items()} } ... "
          f"({batch.ops.intersections} intersections total, "
          f"{batch.elapsed_s * 1e3:.1f} ms)")

    # Churn: 20% of accounts deactivate, new ones register.
    leavers = rng.choice(population, size=args.population // 5,
                         replace=False)
    db.retire_ids(leavers)
    taken = set(db.occupied.tolist()) | set(leavers.tolist())
    newcomers = []
    while len(newcomers) < 500:
        candidate = int(rng.integers(0, args.namespace))
        if candidate not in taken:
            taken.add(candidate)
            newcomers.append(candidate)
    db.insert_ids(newcomers)
    print(f"\nafter churn (-{len(leavers)}, +{len(newcomers)}): "
          f"{len(db.occupied)} active ids, {db.tree.num_nodes} nodes, "
          f"{db.tree.memory_bytes / 1e6:.2f} MB")

    # Sampling still works and leavers can no longer be produced: the
    # tree's candidate space is the *live* population.
    gamers = set(db.reconstruct("gamers", exhaustive=True)
                 .elements.tolist())
    gone = set(leavers.tolist())
    assert not (gamers & gone), "reconstruction returned a deactivated id"
    print(f"gamers still reachable:    {len(gamers)} "
          f"(deactivated members excluded by construction)")
    sample = db.sample("gamers")
    print(f"a random remaining gamer:  {sample.value}")


if __name__ == "__main__":
    main()
