#!/usr/bin/env python3
"""Choosing a hash family: speed, invertibility and structural hazards.

Reproduces the Fig. 7 story in miniature and demonstrates two findings
from this reproduction (DESIGN.md):

1. DictionaryAttack pays namespace-wide hashing, so expensive families
   (MD5) hurt it an order of magnitude more than the BloomSampleTree.
2. The weakly invertible Simple family ``(a*x + b) % p % m`` enables
   HashInvert — but its affine structure interacts pathologically with
   *contiguous* id runs (clustered sets), corrupting the intersection
   estimator.  Murmur3 has no such artifact.

Run:  python examples/hash_family_tradeoffs.py
"""

import argparse
import time

from repro.analysis.plots import ascii_bar_chart
from repro import (
    BloomFilter,
    BloomSampleTree,
    BSTSampler,
    DictionaryAttack,
    HashInvert,
    clustered_query_set,
    create_family,
    plan_tree,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--namespace", type=int, default=50_000)
    parser.add_argument("--set-size", type=int, default=500)
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    M, n = args.namespace, args.set_size
    params = plan_tree(M, n, 0.9)
    secret = clustered_query_set(M, n, rng=args.seed)
    truth = set(secret.tolist())

    da_times: dict[str, float] = {}
    print(f"{'family':>8}  {'BST ms':>8}  {'DA ms':>8}  {'speedup':>7}  "
          f"{'BST accuracy':>12}")
    for name in ("simple", "murmur3", "md5"):
        family = create_family(name, params.k, params.m, namespace_size=M,
                               seed=args.seed)
        tree = BloomSampleTree.build(M, params.depth, family)
        query = BloomFilter.from_items(secret, family)

        sampler = BSTSampler(tree, rng=args.seed)
        start = time.perf_counter()
        hits = produced = 0
        for __ in range(args.rounds):
            result = sampler.sample(query)
            if result.value is not None:
                produced += 1
                hits += result.value in truth
        bst_ms = (time.perf_counter() - start) / args.rounds * 1e3
        accuracy = hits / produced if produced else 0.0

        attack = DictionaryAttack(M, rng=args.seed)
        da_rounds = max(1, args.rounds // 10)
        start = time.perf_counter()
        for __ in range(da_rounds):
            attack.sample(query)
        da_ms = (time.perf_counter() - start) / da_rounds * 1e3

        da_times[name] = da_ms
        print(f"{name:>8}  {bst_ms:>8.2f}  {da_ms:>8.2f}  "
              f"{da_ms / bst_ms:>6.1f}x  {accuracy:>12.2f}")

    print()
    print(ascii_bar_chart(da_times, unit=" ms",
                          title="DictionaryAttack per-sample cost by family "
                                "(the Fig. 7 story):"))

    print("\nNote the 'simple' row's accuracy: affine hashes on clustered")
    print("(near-contiguous) ids corrupt the intersection estimator — use")
    print("murmur3 unless you need HashInvert's weak inversion:")

    family = create_family("simple", params.k, params.m, namespace_size=M,
                           seed=args.seed)
    query = BloomFilter.from_items(secret, family)
    invert = HashInvert(M, rng=args.seed)
    start = time.perf_counter()
    elements, ops = invert.reconstruct(query)
    elapsed = (time.perf_counter() - start) * 1e3
    print(f"\nHashInvert reconstruction (simple family only): "
          f"{elements.size} elements in {elapsed:.1f} ms, "
          f"{ops.memberships} membership queries, "
          f"{ops.hash_inversions} inversions — exact, no tree needed")


if __name__ == "__main__":
    main()
