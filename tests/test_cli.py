"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestPlan:
    def test_prints_parameters(self, capsys):
        assert main(["plan", "-M", "100000", "-n", "500",
                     "-a", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "filter bits m" in out
        assert "tree depth" in out
        assert "MB" in out

    def test_cost_ratio_flag(self, capsys):
        main(["plan", "-M", "100000", "-n", "500", "--cost-ratio", "1000"])
        shallow = capsys.readouterr().out
        main(["plan", "-M", "100000", "-n", "500", "--cost-ratio", "5"])
        deep = capsys.readouterr().out
        depth_of = lambda text: int(
            next(l for l in text.splitlines() if "tree depth" in l)
            .split(":")[1])
        assert depth_of(deep) > depth_of(shallow)


class TestPaperTables:
    def test_prints_both_tables(self, capsys):
        assert main(["paper-tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "137231" in out or "137230" in out  # accuracy-1.0 row


class TestDemo:
    def test_runs_end_to_end(self, capsys):
        assert main(["demo", "--namespace", "5000", "--set-size", "100"]) == 0
        out = capsys.readouterr().out
        assert "10 samples" in out
        assert "reconstruction" in out


class TestDemoVariants:
    def test_tree_flag_selects_backend(self, capsys):
        assert main(["demo", "--namespace", "5000", "--set-size", "100",
                     "--tree", "pruned"]) == 0
        out = capsys.readouterr().out
        assert "tree='pruned'" in out


class TestSample:
    def test_ephemeral_engine(self, capsys):
        assert main(["sample", "-M", "5000", "-n", "100", "-r", "6"]) == 0
        out = capsys.readouterr().out
        assert "samples from 'hidden'" in out
        assert "true elements" in out
        assert "intersections" in out

    def test_save_and_reload_db(self, tmp_path, capsys):
        db_dir = str(tmp_path / "engine")
        assert main(["sample", "-M", "5000", "-n", "100", "--tree",
                     "dynamic", "--save-db", db_dir]) == 0
        capsys.readouterr()
        assert main(["sample", "--db", db_dir, "-r", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 samples from 'hidden'" in out

    def test_unknown_set_in_db(self, tmp_path, capsys):
        db_dir = str(tmp_path / "engine")
        main(["sample", "-M", "5000", "-n", "100", "--save-db", db_dir])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["sample", "--db", db_dir, "--set", "nope"])


class TestReconstruct:
    def test_ephemeral_engine(self, capsys):
        assert main(["reconstruct", "-M", "5000", "-n", "100"]) == 0
        out = capsys.readouterr().out
        assert "reconstruction of 'hidden'" in out
        assert "of the true set recovered" in out

    def test_exhaustive_flag(self, capsys):
        assert main(["reconstruct", "-M", "5000", "-n", "100",
                     "--exhaustive"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out
        assert "100/100 of the true set recovered" in out


class TestCompile:
    def test_compile_then_reload_and_sample(self, tmp_path, capsys):
        db_dir = str(tmp_path / "engine")
        main(["sample", "-M", "5000", "-n", "100", "--save-db", db_dir])
        capsys.readouterr()
        assert main(["compile", "--db", db_dir]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out and "plan.bst" in out
        assert (tmp_path / "engine" / "plan.bst").exists()
        assert (tmp_path / "engine" / "sets.bst").exists()
        # The flipped engine.json loads through the compiled path and
        # still serves samples.
        assert main(["sample", "--db", db_dir, "-r", "3"]) == 0
        assert "3 samples from 'hidden'" in capsys.readouterr().out

    def test_second_compile_is_a_noop_without_force(self, tmp_path, capsys):
        db_dir = str(tmp_path / "engine")
        main(["sample", "-M", "5000", "-n", "100", "--save-db", db_dir])
        main(["compile", "--db", db_dir])
        capsys.readouterr()
        assert main(["compile", "--db", db_dir]) == 0
        assert "already holds a compiled plan" in capsys.readouterr().out
        assert main(["compile", "--db", db_dir, "--force"]) == 0
        assert "compiled" in capsys.readouterr().out

    def test_missing_engine_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="no saved engine"):
            main(["compile", "--db", str(tmp_path / "nope")])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
