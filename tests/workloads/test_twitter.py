"""Tests for the synthetic Twitter dataset (Section 8 substitution)."""

import numpy as np
import pytest

from repro.workloads.twitter import SyntheticTwitterDataset


@pytest.fixture(scope="module")
def dataset():
    return SyntheticTwitterDataset.generate(
        namespace_size=200_000, num_users=5_000, num_hashtags=40,
        min_audience=50, max_audience=500, rng=0)


class TestGeneration:
    def test_shape(self, dataset):
        assert dataset.num_users == 5_000
        assert len(dataset.hashtag_audiences) == 40
        assert dataset.occupancy == pytest.approx(5_000 / 200_000)

    def test_user_ids_valid(self, dataset):
        ids = dataset.user_ids
        assert len(np.unique(ids)) == len(ids)
        assert ids.max() < 200_000
        assert (np.diff(ids.astype(np.int64)) > 0).all()

    def test_audiences_are_users(self, dataset):
        users = set(dataset.user_ids.tolist())
        for audience in dataset.hashtag_audiences:
            assert 50 <= len(audience) <= 500
            assert set(audience.tolist()) <= users
            assert len(np.unique(audience)) == len(audience)

    def test_audience_sizes_skewed(self, dataset):
        sizes = np.array([len(a) for a in dataset.hashtag_audiences])
        assert sizes.max() == 500  # head of the Zipf hits the cap
        assert sizes.min() == 50   # tail hits the floor

    def test_uniform_vs_clustered_ids(self):
        uni = SyntheticTwitterDataset.generate(
            namespace_size=200_000, num_users=5_000, num_hashtags=5,
            id_distribution="uniform", rng=1)
        clu = SyntheticTwitterDataset.generate(
            namespace_size=200_000, num_users=5_000, num_hashtags=5,
            id_distribution="clustered", rng=1)
        from repro.workloads.generators import clustering_score
        assert clustering_score(clu.user_ids, 200_000) > \
            clustering_score(uni.user_ids, 200_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTwitterDataset.generate(namespace_size=10, num_users=20)
        with pytest.raises(ValueError):
            SyntheticTwitterDataset.generate(id_distribution="sideways")


class TestNamespaceFractions:
    def test_restrict_drops_outsiders(self, dataset):
        keep = dataset.user_ids[: dataset.num_users // 2]
        restricted = dataset.restrict_to_namespace(keep)
        assert restricted.num_users == len(keep)
        users = set(restricted.user_ids.tolist())
        for audience in restricted.hashtag_audiences:
            assert set(audience.tolist()) <= users

    def test_users_in_leaves(self, dataset):
        num_leaves = 16
        all_leaves = np.arange(num_leaves)
        everyone = dataset.users_in_leaves(all_leaves, num_leaves)
        np.testing.assert_array_equal(everyone, dataset.user_ids)
        first_half = dataset.users_in_leaves(np.arange(8), num_leaves)
        assert (first_half < 100_000).all()

    def test_fraction_monotone(self, dataset):
        small = dataset.namespace_at_fraction(0.1, "uniform", rng=3)
        large = dataset.namespace_at_fraction(0.8, "uniform", rng=3)
        assert len(small) < len(large)
        assert len(large) <= dataset.num_users

    def test_clustered_fraction(self, dataset):
        occupied = dataset.namespace_at_fraction(0.3, "clustered", rng=3)
        assert 0 < len(occupied) < dataset.num_users
        assert set(occupied.tolist()) <= set(dataset.user_ids.tolist())

    def test_fraction_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.namespace_at_fraction(0.0, "uniform")
        with pytest.raises(ValueError):
            dataset.namespace_at_fraction(1.5, "uniform")
