"""Tests for the query-set generators (Section 7.1)."""

import numpy as np
import pytest

from repro.workloads.generators import (
    clustered_query_set,
    clustering_score,
    select_leaves,
    uniform_query_set,
)


class TestUniform:
    def test_size_range_uniqueness(self):
        values = uniform_query_set(10_000, 500, rng=0)
        assert len(values) == 500
        assert len(np.unique(values)) == 500
        assert values.min() >= 0
        assert values.max() < 10_000
        assert (np.diff(values.astype(np.int64)) > 0).all()  # sorted

    def test_lo_offset(self):
        values = uniform_query_set(10_000, 100, rng=0, lo=9_000)
        assert values.min() >= 9_000

    def test_rejection_path_for_sparse_draws(self):
        # Large namespace forces the rejection-sampling branch.
        values = uniform_query_set(1 << 40, 1000, rng=0)
        assert len(np.unique(values)) == 1000

    def test_full_namespace(self):
        values = uniform_query_set(100, 100, rng=0)
        np.testing.assert_array_equal(values, np.arange(100))

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            uniform_query_set(10, 11)

    def test_approximately_uniform(self):
        values = uniform_query_set(1000, 500, rng=1)
        # Half the namespace drawn: each half should hold roughly half.
        assert 200 < (values < 500).sum() < 300


class TestClustered:
    def test_size_range_uniqueness(self):
        values = clustered_query_set(10_000, 500, rng=0)
        assert len(values) == 500
        assert len(np.unique(values)) == 500
        assert values.min() >= 0
        assert values.max() < 10_000

    def test_more_clustered_than_uniform(self):
        M, n = 50_000, 400
        uni = uniform_query_set(M, n, rng=3)
        clu = clustered_query_set(M, n, rng=3)
        assert clustering_score(clu, M) > clustering_score(uni, M) + 0.1

    def test_aggressiveness_increases_clustering(self):
        M, n = 50_000, 400
        mild = clustered_query_set(M, n, rng=4, aggressiveness=0.0)
        strong = clustered_query_set(M, n, rng=4, aggressiveness=30.0)
        assert clustering_score(strong, M) >= clustering_score(mild, M)

    def test_adjacent_runs_present(self):
        """The paper's p=10 process produces runs of consecutive ids."""
        values = clustered_query_set(100_000, 300, rng=5)
        gaps = np.diff(values.astype(np.int64))
        assert (gaps == 1).mean() > 0.5

    def test_whole_namespace(self):
        values = clustered_query_set(64, 64, rng=0)
        np.testing.assert_array_equal(values, np.arange(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_query_set(10, 11)
        with pytest.raises(ValueError):
            clustered_query_set(100, 10, aggressiveness=100.0)
        with pytest.raises(ValueError):
            clustered_query_set(100, 10, aggressiveness=-1.0)

    def test_deterministic_with_seed(self):
        a = clustered_query_set(10_000, 100, rng=7)
        b = clustered_query_set(10_000, 100, rng=7)
        np.testing.assert_array_equal(a, b)


class TestClusteringScore:
    def test_tight_cluster_scores_high(self):
        assert clustering_score(np.arange(100), 100_000) > 0.9

    def test_evenly_spread_scores_low(self):
        spread = np.arange(0, 100_000, 1000)
        assert clustering_score(spread, 100_000) < 0.05

    def test_degenerate_inputs(self):
        assert clustering_score(np.array([5]), 100) == 0.0
        assert clustering_score(np.array([]), 100) == 0.0


class TestSelectLeaves:
    def test_uniform_mode(self):
        leaves = select_leaves(256, 52, "uniform", rng=0)
        assert len(leaves) == 52
        assert len(np.unique(leaves)) == 52
        assert leaves.max() < 256

    def test_clustered_mode(self):
        leaves = select_leaves(256, 52, "clustered", rng=0)
        assert len(np.unique(leaves)) == 52
        assert leaves.max() < 256

    def test_validation(self):
        with pytest.raises(ValueError):
            select_leaves(10, 11, "uniform")
        with pytest.raises(ValueError):
            select_leaves(10, 5, "diagonal")
