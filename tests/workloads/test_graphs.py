"""Tests for the graph adjacency workload."""

import numpy as np
import pytest

from repro.core.hashing import create_family
from repro.core.tree import BloomSampleTree
from repro.workloads.graphs import (
    adjacency_sets,
    adjacency_store,
    community_graph,
    random_walk,
    relabel_to_integers,
)

nx = pytest.importorskip("networkx")


@pytest.fixture(scope="module")
def graph():
    return community_graph(400, community_size=40, rng=0)


class TestGraphGeneration:
    def test_shape(self, graph):
        assert graph.number_of_nodes() == 400
        assert graph.number_of_edges() > 0

    def test_communities_are_dense(self, graph):
        # Within-community edges dominate: neighbour ids stay close.
        gaps = []
        for vertex in list(graph.nodes)[:50]:
            for neighbour in graph.neighbors(vertex):
                gaps.append(abs(neighbour - vertex))
        assert np.median(gaps) < 40

    def test_deterministic(self):
        a = community_graph(200, rng=3)
        b = community_graph(200, rng=3)
        assert set(a.edges) == set(b.edges)


class TestAdjacencySets:
    def test_matches_graph(self, graph):
        sets = adjacency_sets(graph)
        assert set(sets) == set(int(v) for v in graph.nodes)
        for vertex in list(graph.nodes)[:20]:
            expected = np.array(sorted(graph.neighbors(vertex)),
                                dtype=np.uint64)
            np.testing.assert_array_equal(sets[int(vertex)], expected)

    def test_relabel(self):
        labelled = nx.Graph([("a", "b"), ("b", "c")])
        relabelled, mapping = relabel_to_integers(labelled)
        assert set(relabelled.nodes) == {0, 1, 2}
        assert relabelled.has_edge(mapping["a"], mapping["b"])


class TestAdjacencyStore:
    @pytest.fixture(scope="class")
    def setup(self, graph):
        namespace = graph.number_of_nodes()
        family = create_family("murmur3", 3, 8_192,
                               namespace_size=namespace, seed=1)
        tree = BloomSampleTree.build(namespace, 4, family)
        store = adjacency_store(graph, family, tree=tree, rng=1)
        return graph, store

    def test_one_filter_per_vertex(self, setup):
        graph, store = setup
        assert len(store) == graph.number_of_nodes()
        assert "adj:0" in store

    def test_membership_matches_edges(self, setup):
        graph, store = setup
        for u, v in list(graph.edges)[:30]:
            assert store.contains(f"adj:{u}", v)
            assert store.contains(f"adj:{v}", u)

    def test_neighbour_sampling(self, setup):
        graph, store = setup
        vertex = 0
        true_neighbours = set(graph.neighbors(vertex))
        hits = 0
        for __ in range(30):
            value = store.sample(f"adj:{vertex}").value
            hits += value in true_neighbours
        assert hits >= 25

    def test_random_walk_mostly_follows_edges(self, setup):
        graph, store = setup
        walk = random_walk(store, start=5, length=10)
        assert walk[0] == 5
        assert len(walk) >= 2
        valid = sum(graph.has_edge(a, b) for a, b in zip(walk, walk[1:]))
        assert valid >= (len(walk) - 1) * 0.7

    def test_reconstruction_recovers_neighbourhood(self, setup):
        graph, store = setup
        vertex = max(graph.nodes, key=graph.degree)
        result = store.reconstruct(f"adj:{vertex}", exhaustive=True)
        true_neighbours = set(graph.neighbors(vertex))
        assert true_neighbours <= set(result.elements.tolist())
