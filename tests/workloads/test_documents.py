"""Tests for the information-retrieval workload."""

import numpy as np
import pytest

from repro.core.hashing import create_family
from repro.core.tree import BloomSampleTree
from repro.workloads.documents import (
    SyntheticCorpus,
    conjunctive_sample,
    inverted_index,
)

DOCS = 20_000


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus.generate(num_documents=DOCS, num_keywords=50,
                                    rng=0)


@pytest.fixture(scope="module")
def index(corpus):
    family = create_family("murmur3", 3, 32_768, namespace_size=DOCS,
                           seed=3)
    tree = BloomSampleTree.build(DOCS, 6, family)
    return inverted_index(corpus, family, tree=tree, rng=3)


class TestCorpusGeneration:
    def test_shape(self, corpus):
        assert corpus.num_keywords == 50
        assert len(corpus.postings) == 50
        assert all(k.startswith("kw") for k in corpus.keywords)

    def test_zipf_document_frequencies(self, corpus):
        frequencies = [corpus.document_frequency(k) for k in corpus.keywords]
        # Head keyword near max_df, tail at the floor, non-increasing.
        assert frequencies[0] == pytest.approx(0.2 * DOCS, rel=0.01)
        assert frequencies == sorted(frequencies, reverse=True)
        assert frequencies[-1] >= max(1, int(0.001 * DOCS))

    def test_postings_are_valid_doc_ids(self, corpus):
        for keyword in corpus.keywords[:10]:
            docs = corpus.postings[keyword]
            assert docs.max() < DOCS
            assert len(np.unique(docs)) == len(docs)
            assert (np.diff(docs.astype(np.int64)) > 0).all()

    def test_conjunctive_ground_truth(self, corpus):
        a, b = corpus.keywords[0], corpus.keywords[1]
        both = corpus.documents_matching([a, b])
        expected = np.intersect1d(corpus.postings[a], corpus.postings[b])
        np.testing.assert_array_equal(both, expected)
        with pytest.raises(ValueError):
            corpus.documents_matching([])

    def test_generation_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus.generate(min_document_frequency=0.5,
                                     max_document_frequency=0.1)


class TestInvertedIndex:
    def test_one_filter_per_keyword(self, corpus, index):
        assert len(index) == corpus.num_keywords

    def test_membership_matches_postings(self, corpus, index):
        keyword = corpus.keywords[5]
        docs = corpus.postings[keyword]
        assert index.filter(keyword).contains_many(docs).all()

    def test_document_sampling(self, corpus, index):
        keyword = corpus.keywords[3]
        truth = set(corpus.postings[keyword].tolist())
        hits = sum(index.sample(keyword).value in truth for __ in range(30))
        assert hits >= 27

    def test_postings_reconstruction(self, corpus, index):
        keyword = corpus.keywords[-1]  # rare keyword: small postings
        result = index.reconstruct(keyword, exhaustive=True)
        truth = set(corpus.postings[keyword].tolist())
        assert truth <= set(result.elements.tolist())

    def test_conjunctive_sampling_precision(self, corpus, index):
        from repro.workloads.documents import conjunctive_precision_estimate

        keywords = [corpus.keywords[0], corpus.keywords[1]]
        truth = set(corpus.documents_matching(keywords).tolist())
        assert truth, "test needs a non-empty conjunction"
        produced = []
        for __ in range(60):
            result = conjunctive_sample(index, keywords)
            if result.value is not None:
                produced.append(result.value)
        assert produced
        hits = sum(v in truth for v in produced)
        measured = hits / len(produced)
        predicted = conjunctive_precision_estimate(index, keywords)
        # One-sided false positives contaminate the AND sketch; the
        # precision model must predict the measured rate.
        assert measured == pytest.approx(predicted, abs=0.25)
        assert measured >= 0.5

    def test_conjunctive_empty_intersection(self, corpus, index):
        # Two rare keywords usually share no document.
        rare = [k for k in corpus.keywords
                if corpus.document_frequency(k) <= 25][:2]
        if len(rare) < 2 or corpus.documents_matching(rare).size > 0:
            pytest.skip("no disjoint rare pair in this corpus draw")
        nones = sum(conjunctive_sample(index, rare).value is None
                    for __ in range(20))
        assert nones >= 15
