"""The committed API reference must stay in sync with the code."""

import pathlib
import subprocess
import sys

DOCS = pathlib.Path(__file__).parent.parent / "docs"


def test_api_reference_up_to_date(tmp_path):
    committed = (DOCS / "api.md").read_text()
    result = subprocess.run([sys.executable, str(DOCS / "generate_api.py")],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    regenerated = (DOCS / "api.md").read_text()
    assert regenerated == committed, (
        "docs/api.md is stale; run python docs/generate_api.py"
    )


def test_api_reference_mentions_key_exports():
    text = (DOCS / "api.md").read_text()
    for name in ("BloomSampleTree", "BSTSampler", "DictionaryAttack",
                 "HashInvert", "PrunedBloomSampleTree", "FilterStore",
                 "CountingBloomFilter", "plan_tree"):
        assert name in text, name


def test_algorithms_doc_exists():
    text = (DOCS / "algorithms.md").read_text()
    for anchor in ("Section 3.1", "Algorithm 1", "Section 5.4",
                   "Known deviations"):
        assert anchor in text, anchor
