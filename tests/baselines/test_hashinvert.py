"""Tests for the HashInvert baseline (Section 4)."""

import numpy as np
import pytest

from repro.baselines.hashinvert import HashInvert
from repro.core.bloom import BloomFilter
from repro.core.hashing import NotInvertibleError
from tests.conftest import SMALL_NAMESPACE


@pytest.fixture()
def simple_query(simple_family, secret_set):
    return BloomFilter.from_items(secret_set, simple_family)


class TestSampling:
    def test_sample_is_positive(self, simple_query):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        for __ in range(20):
            result = invert.sample(simple_query)
            assert result.value is not None
            assert result.value in simple_query

    def test_ops_counted(self, simple_query):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        result = invert.sample(simple_query)
        assert result.ops.hash_inversions == simple_query.k
        assert result.ops.memberships > 0

    def test_empty_filter_none(self, simple_family):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        assert invert.sample(BloomFilter(simple_family)).value is None

    def test_requires_invertible_family(self, query_filter):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        with pytest.raises(NotInvertibleError):
            invert.sample(query_filter)

    def test_eventually_covers_set(self, simple_family):
        secret = np.array([5, 500, 2500, 4000], dtype=np.uint64)
        query = BloomFilter.from_items(secret, simple_family)
        invert = HashInvert(SMALL_NAMESPACE, rng=1)
        seen = {invert.sample(query).value for __ in range(400)}
        assert set(secret.tolist()) <= seen

    def test_validation(self):
        with pytest.raises(ValueError):
            HashInvert(0)


class TestReconstruction:
    def _brute(self, query):
        namespace = np.arange(SMALL_NAMESPACE, dtype=np.uint64)
        return namespace[query.contains_many(namespace)]

    def test_set_bits_strategy_exact(self, simple_query):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        elements, ops = invert.reconstruct(simple_query, strategy="set-bits")
        np.testing.assert_array_equal(elements, self._brute(simple_query))
        assert ops.memberships > 0

    def test_unset_bits_strategy_exact(self, simple_query):
        """The complement trick needs zero membership queries."""
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        elements, ops = invert.reconstruct(simple_query, strategy="unset-bits")
        np.testing.assert_array_equal(elements, self._brute(simple_query))
        assert ops.memberships == 0

    def test_auto_picks_by_density(self, simple_family):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        sparse = BloomFilter.from_items(np.arange(16, dtype=np.uint64),
                                        simple_family)
        assert sparse.fill_ratio() <= 0.5
        __, ops = invert.reconstruct(sparse, strategy="auto")
        assert ops.memberships > 0  # chose set-bits

        dense = BloomFilter.from_items(
            np.arange(0, SMALL_NAMESPACE, 1, dtype=np.uint64), simple_family)
        assert dense.fill_ratio() > 0.5
        __, ops = invert.reconstruct(dense, strategy="auto")
        assert ops.memberships == 0  # chose unset-bits

    def test_strategies_agree(self, simple_query):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        a, __ = invert.reconstruct(simple_query, strategy="set-bits")
        b, __ = invert.reconstruct(simple_query, strategy="unset-bits")
        np.testing.assert_array_equal(a, b)

    def test_empty_filter(self, simple_family):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        elements, __ = invert.reconstruct(BloomFilter(simple_family),
                                          strategy="set-bits")
        assert elements.size == 0

    def test_unknown_strategy(self, simple_query):
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        with pytest.raises(ValueError):
            invert.reconstruct(simple_query, strategy="best")

    def test_inversion_savings_vs_dictionary(self, simple_query):
        """HashInvert queries fewer candidates than the whole namespace."""
        invert = HashInvert(SMALL_NAMESPACE, rng=0)
        __, ops = invert.reconstruct(simple_query, strategy="set-bits")
        assert ops.memberships < SMALL_NAMESPACE
