"""Tests for the DictionaryAttack baseline (Section 4)."""

import numpy as np
import pytest

from repro.baselines.dictionary_attack import DictionaryAttack, reservoir_sample
from repro.core.bloom import BloomFilter
from tests.conftest import SMALL_NAMESPACE


class TestReservoirSample:
    def test_empty_stream(self):
        assert reservoir_sample([]) is None

    def test_single_element(self):
        assert reservoir_sample([42], rng=0) == 42

    def test_uniformity(self):
        rng = np.random.default_rng(0)
        counts = np.zeros(5, dtype=np.int64)
        for __ in range(5000):
            counts[reservoir_sample(range(5), rng=rng)] += 1
        freqs = counts / counts.sum()
        np.testing.assert_allclose(freqs, 0.2, atol=0.03)


class TestSampling:
    def test_sample_is_positive(self, query_filter, secret_set):
        attack = DictionaryAttack(SMALL_NAMESPACE, rng=0)
        for __ in range(10):
            result = attack.sample(query_filter)
            assert result.value in query_filter

    def test_membership_cost_is_namespace(self, query_filter):
        attack = DictionaryAttack(SMALL_NAMESPACE, rng=0)
        result = attack.sample(query_filter)
        assert result.ops.memberships == SMALL_NAMESPACE

    def test_empty_filter_none(self, small_family):
        attack = DictionaryAttack(SMALL_NAMESPACE, rng=0)
        assert attack.sample(BloomFilter(small_family)).value is None

    def test_uniform_over_positives(self, small_family):
        """Chunked reservoir matches the uniform distribution exactly."""
        secret = np.array([1, 100, 1000, 2000, 4000], dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        attack = DictionaryAttack(SMALL_NAMESPACE, chunk_size=700, rng=3)
        counts = {}
        for __ in range(3000):
            v = attack.sample(query).value
            counts[v] = counts.get(v, 0) + 1
        # All positives seen, frequencies near-uniform.
        positives = sorted(counts)
        assert set(secret.tolist()) <= set(positives)
        freqs = np.array([counts[p] for p in positives]) / 3000
        np.testing.assert_allclose(freqs, 1 / len(positives), atol=0.04)

    def test_chunk_boundaries(self, small_family):
        secret = np.array([0, 699, 700, SMALL_NAMESPACE - 1], dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        attack = DictionaryAttack(SMALL_NAMESPACE, chunk_size=700, rng=1)
        seen = {attack.sample(query).value for __ in range(200)}
        assert set(secret.tolist()) <= seen

    def test_validation(self):
        with pytest.raises(ValueError):
            DictionaryAttack(0)


class TestReconstruction:
    def test_exact_positive_set(self, query_filter):
        attack = DictionaryAttack(SMALL_NAMESPACE, rng=0)
        elements, ops = attack.reconstruct(query_filter)
        namespace = np.arange(SMALL_NAMESPACE, dtype=np.uint64)
        expected = namespace[query_filter.contains_many(namespace)]
        np.testing.assert_array_equal(elements, expected)
        assert ops.memberships == SMALL_NAMESPACE

    def test_empty_filter(self, small_family):
        attack = DictionaryAttack(SMALL_NAMESPACE, rng=0)
        elements, __ = attack.reconstruct(BloomFilter(small_family))
        assert elements.size == 0
