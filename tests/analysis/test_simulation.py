"""Tests for the Proposition 5.2 leaf-arrival simulator."""

import numpy as np
import pytest

from repro.analysis.simulation import leaf_arrival_report
from repro.core.bloom import BloomFilter
from repro.core.sampling import BSTSampler, ExactUniformSampler
from tests.conftest import SMALL_NAMESPACE


class TestLeafArrivalReport:
    def test_exact_sampler_is_proportional(self, small_tree, small_family):
        rng = np.random.default_rng(4)
        secret = np.sort(rng.choice(SMALL_NAMESPACE, size=128, replace=False)
                         ).astype(np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        sampler = ExactUniformSampler(small_tree, rng=4, exhaustive=True)
        report = leaf_arrival_report(small_tree, sampler, query, secret,
                                     rounds=8_000)
        assert report.starved_leaves == 0
        # Uniform-by-construction sampling: ratios concentrate near 1.
        assert report.max_deviation < 0.6
        assert np.median(np.abs(report.ratios - 1.0)) < 0.2

    def test_probabilities_normalised(self, small_tree, small_family):
        rng = np.random.default_rng(5)
        secret = np.sort(rng.choice(SMALL_NAMESPACE, size=64, replace=False)
                         ).astype(np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        sampler = BSTSampler(small_tree, rng=5)
        report = leaf_arrival_report(small_tree, sampler, query, secret,
                                     rounds=2_000)
        assert report.empirical.sum() == pytest.approx(1.0)
        assert report.ideal.sum() == pytest.approx(1.0)
        assert (report.leaf_elements > 0).all()
        assert report.rounds == 2_000

    def test_descent_sampler_reported_honestly(self, small_tree,
                                               small_family):
        """The report exposes descent-sampler distortion when present."""
        secret = np.array([5, 2000, 4000], dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        sampler = BSTSampler(small_tree, rng=6)
        report = leaf_arrival_report(small_tree, sampler, query, secret,
                                     rounds=500)
        # Three singleton leaves: every ratio is a multiple of 1/ideal.
        assert len(report.ratios) == 3
        assert report.max_deviation >= 0.0

    def test_rejects_empty_true_set_coverage(self, small_tree,
                                             small_family):
        query = BloomFilter(small_family)
        sampler = BSTSampler(small_tree, rng=0)
        with pytest.raises(ValueError):
            leaf_arrival_report(small_tree, sampler, query,
                                np.array([], dtype=np.uint64), rounds=10)

    def test_null_rounds_counted(self, small_tree, small_family):
        # Query filter that stores nothing: every round is null.
        secret = np.array([17], dtype=np.uint64)
        empty_query = BloomFilter(small_family)
        sampler = BSTSampler(small_tree, rng=0)
        with pytest.raises(ValueError):
            leaf_arrival_report(small_tree, sampler, empty_query, secret,
                                rounds=5)
