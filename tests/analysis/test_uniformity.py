"""Tests for the chi-squared uniformity protocol (Section 7.2)."""

import numpy as np
import pytest

from repro.analysis.uniformity import (
    chi_squared_uniformity,
    recommended_rounds,
    sample_counts,
    total_variation_distance,
    uniformity_p_value,
)


class TestChiSquared:
    def test_uniform_counts_pass(self):
        rng = np.random.default_rng(0)
        draws = rng.integers(0, 50, size=50 * 130)
        counts = np.bincount(draws, minlength=50)
        __, p = chi_squared_uniformity(counts)
        assert p > 0.05

    def test_skewed_counts_fail(self):
        counts = np.full(50, 130)
        counts[0] = 1300  # one element 10x over-sampled
        __, p = chi_squared_uniformity(counts)
        assert p < 0.001

    def test_starved_elements_fail(self):
        counts = np.full(50, 130)
        counts[:10] = 0
        __, p = chi_squared_uniformity(counts)
        assert p < 0.001

    def test_statistic_is_pearson(self):
        counts = np.array([10, 20, 30])
        stat, __ = chi_squared_uniformity(counts)
        expected = ((counts - 20.0) ** 2 / 20.0).sum()
        assert stat == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_squared_uniformity(np.array([5]))
        with pytest.raises(ValueError):
            chi_squared_uniformity(np.zeros(5))


class TestProtocolHelpers:
    def test_recommended_rounds(self):
        assert recommended_rounds(100) == 13_000
        assert recommended_rounds(1) == 130
        with pytest.raises(ValueError):
            recommended_rounds(0)

    def test_sample_counts_alignment(self):
        population = [10, 20, 30]
        samples = [10, 10, 30, 99]  # 99 is outside: ignored
        counts = sample_counts(samples, population)
        np.testing.assert_array_equal(counts, [2, 0, 1])

    def test_uniformity_p_value_wrapper(self):
        rng = np.random.default_rng(1)
        population = list(range(20))
        samples = rng.choice(population, size=20 * 130).tolist()
        assert uniformity_p_value(samples, population) > 0.01

    def test_no_samples_in_population(self):
        with pytest.raises(ValueError):
            uniformity_p_value([99, 98], [1, 2, 3])


class TestTotalVariation:
    def test_perfectly_uniform_is_zero(self):
        assert total_variation_distance(np.full(10, 7)) == 0.0

    def test_concentrated_approaches_one(self):
        counts = np.zeros(100, dtype=np.int64)
        counts[0] = 1_000
        assert total_variation_distance(counts) == pytest.approx(0.99)

    def test_half_starved(self):
        counts = np.array([2, 2, 0, 0])
        assert total_variation_distance(counts) == pytest.approx(0.5)

    def test_sampling_noise_is_small(self):
        rng = np.random.default_rng(0)
        counts = np.bincount(rng.integers(0, 50, size=50 * 200),
                             minlength=50)
        assert total_variation_distance(counts) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1]))
        with pytest.raises(ValueError):
            total_variation_distance(np.zeros(4))
