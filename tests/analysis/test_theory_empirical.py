"""Empirical validation of the paper's probability formulas.

These tests simulate the events the formulas describe and check the
measured frequencies against the closed forms — the reproduction's
ground-truth link between Section 3/5 theory and the implementation.
"""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.cardinality import (
    estimate_cardinality,
    false_positive_rate,
    false_set_overlap_probability,
)
from repro.core.hashing import create_family
from repro.core.sampling import BSTSampler
from repro.core.tree import BloomSampleTree


class TestFalseSetOverlapEq1:
    def test_empirical_overlap_probability(self):
        """Eq. (1) predicts how often disjoint sets' filters intersect."""
        m, k, n1, n2 = 256, 2, 3, 3
        namespace = 10_000
        rng = np.random.default_rng(0)
        trials = 400
        overlaps = 0
        for seed in range(trials):
            family = create_family("murmur3", k, m, seed=seed)
            ids = rng.choice(namespace, size=n1 + n2, replace=False)
            a = BloomFilter.from_items(ids[:n1].astype(np.uint64), family)
            b = BloomFilter.from_items(ids[n1:].astype(np.uint64), family)
            overlaps += a.bits.intersects(b.bits)
        predicted = false_set_overlap_probability(n1, n2, m, k)
        observed = overlaps / trials
        # Binomial noise at 400 trials: allow ~3 sigma.
        sigma = np.sqrt(predicted * (1 - predicted) / trials)
        assert abs(observed - predicted) < max(3 * sigma, 0.03)


class TestFppModel:
    def test_empirical_false_positive_rate(self):
        m, k, n = 4_096, 3, 300
        namespace = 100_000
        family = create_family("murmur3", k, m, seed=5)
        rng = np.random.default_rng(5)
        members = rng.choice(namespace // 2, size=n, replace=False)
        bloom = BloomFilter.from_items(members.astype(np.uint64), family)
        outsiders = np.arange(namespace // 2, namespace, dtype=np.uint64)
        observed = bloom.contains_many(outsiders).mean()
        predicted = false_positive_rate(n, m, k)
        assert observed == pytest.approx(predicted, rel=0.15)


class TestCardinalityEstimator:
    def test_estimator_is_calibrated(self):
        """Across random filters the estimate centres on the truth."""
        m, k, n = 8_192, 3, 500
        estimates = []
        for seed in range(30):
            family = create_family("murmur3", k, m, seed=seed)
            rng = np.random.default_rng(seed)
            items = rng.choice(1 << 30, size=n, replace=False)
            bloom = BloomFilter.from_items(items.astype(np.uint64), family)
            estimates.append(estimate_cardinality(bloom.count_ones(), m, k))
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(n, rel=0.03)
        # Spread should be modest at this fill ratio.
        assert float(np.std(estimates)) < 0.1 * n


class TestNodeVisitEfficiency:
    def test_visits_stay_near_tree_height(self):
        """Prop. 5.3's efficiency story: visits ~ height, not ~ nodes.

        The sampler's node count must sit within a small constant of the
        lower bound ``depth + 1`` (the direct root-to-leaf path) — far
        below the tree's total node count, which is what makes the BST
        beat the dictionary attack (Figs. 3-6).
        """
        namespace, m, depth = 16_384, 8_192, 6
        family = create_family("murmur3", 3, m, seed=2)
        tree = BloomSampleTree.build(namespace, depth, family)
        rng = np.random.default_rng(2)
        for n in (16, 256, 2_048):
            items = rng.choice(namespace, size=n, replace=False)
            query = BloomFilter.from_items(items.astype(np.uint64), family)
            sampler = BSTSampler(tree, rng=3)
            mean_nodes = float(np.mean([
                sampler.sample(query).ops.nodes_visited
                for __ in range(120)
            ]))
            assert mean_nodes >= depth + 1
            assert mean_nodes <= 3 * (depth + 1)
            assert mean_nodes < tree.num_nodes / 4
