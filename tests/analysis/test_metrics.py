"""Tests for measurement helpers."""

import time

import numpy as np
import pytest

from repro.analysis.metrics import Timer, measured_accuracy, sample_distribution


class TestMeasuredAccuracy:
    def test_all_hits(self):
        assert measured_accuracy([1, 2, 3], np.array([1, 2, 3, 4])) == 1.0

    def test_mixed(self):
        assert measured_accuracy([1, 99, 2, 98], np.array([1, 2])) == 0.5

    def test_nones_excluded(self):
        assert measured_accuracy([1, None, None, 1], np.array([1])) == 1.0

    def test_no_samples(self):
        with pytest.raises(ValueError):
            measured_accuracy([None, None], np.array([1]))


class TestSampleDistribution:
    def test_probabilities_align_with_sorted_set(self):
        true_set = np.array([30, 10, 20])
        samples = [10, 10, 20, 99]
        dist = sample_distribution(samples, true_set)
        np.testing.assert_allclose(dist, [2 / 3, 1 / 3, 0.0])

    def test_empty_inside(self):
        dist = sample_distribution([99], np.array([1, 2]))
        np.testing.assert_array_equal(dist, [0.0, 0.0])

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        true_set = np.arange(10)
        samples = rng.integers(0, 10, size=100).tolist()
        assert sample_distribution(samples, true_set).sum() == pytest.approx(1.0)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        assert t.elapsed_ms == pytest.approx(t.elapsed * 1e3)

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= first
