"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.plots import (
    ascii_bar_chart,
    ascii_line_chart,
    series_from_rows,
)


class TestLineChart:
    def test_basic_render(self):
        chart = ascii_line_chart(
            {"up": ([0, 1, 2], [1.0, 2.0, 3.0]),
             "down": ([0, 1, 2], [3.0, 2.0, 1.0])},
            width=20, height=8, title="T", x_label="acc", y_label="ms")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "legend: o up   x down" in chart
        assert "acc" in chart
        # Extremes appear on the axis labels.
        assert "3" in chart and "1" in chart

    def test_markers_placed_at_extremes(self):
        chart = ascii_line_chart({"s": ([0, 10], [0.0, 5.0])},
                                 width=11, height=5)
        rows = [l for l in chart.splitlines() if "|" in l]
        assert rows[0].count("o") == 1      # max lands on the top row
        assert rows[-1].count("o") == 1     # min on the bottom row

    def test_log_scale(self):
        chart = ascii_line_chart({"s": ([1, 2, 3], [1.0, 10.0, 100.0])},
                                 log_y=True, width=10, height=7)
        # On a log axis the three points are equally spaced vertically.
        marker_rows = [i for i, line in enumerate(chart.splitlines())
                       if "|" in line and "o" in line]
        gaps = [b - a for a, b in zip(marker_rows, marker_rows[1:])]
        assert len(set(gaps)) == 1

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([1], [0.0])}, log_y=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([1, 2], [1.0])})
        with pytest.raises(ValueError):
            ascii_line_chart({"s": ([], [])})

    def test_flat_series(self):
        chart = ascii_line_chart({"flat": ([0, 1], [5.0, 5.0])},
                                 width=8, height=4)
        assert "o" in chart


class TestBarChart:
    def test_bars_proportional(self):
        chart = ascii_bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_bar(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 1.0})
        assert "0" in chart.splitlines()[0]

    def test_unit_suffix(self):
        chart = ascii_bar_chart({"a": 2.0}, unit="ms")
        assert "2ms" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": -1.0})


class TestSeriesFromRows:
    def test_grouping(self):
        rows = [
            {"method": "BST", "n": 100, "acc": 0.5, "ms": 1.0},
            {"method": "BST", "n": 100, "acc": 0.9, "ms": 2.0},
            {"method": "DA", "n": 100, "acc": 0.5, "ms": 9.0},
        ]
        series = series_from_rows(rows, "acc", "ms", ("method", "n"))
        assert set(series) == {"BST/100", "DA/100"}
        assert series["BST/100"] == ([0.5, 0.9], [1.0, 2.0])

    def test_round_trip_through_chart(self):
        rows = [{"m": "A", "x": i, "y": float(i)} for i in range(3)]
        series = series_from_rows(rows, "x", "y", ("m",))
        assert "A" in ascii_line_chart(series)
