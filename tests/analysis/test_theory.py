"""Tests for the closed forms of Propositions 5.2 and 5.3."""

import math

import pytest

from repro.analysis.theory import (
    alpha_s,
    critical_depth,
    divergence_f,
    epsilon_m,
    expected_branching_nodes,
    expected_nodes_reconstruction,
    expected_nodes_sampling,
    sample_probability_bounds,
)
from repro.core.cardinality import false_set_overlap_probability


class TestEpsilon:
    def test_vanishes_with_m(self):
        values = [epsilon_m(m, 1000, 3) for m in (10 ** 4, 10 ** 6, 10 ** 8)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.1

    def test_grows_with_n(self):
        assert epsilon_m(10 ** 6, 10_000, 3) > epsilon_m(10 ** 6, 100, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            epsilon_m(1, 10, 3)


class TestDivergence:
    def test_f_exceeds_epsilon_component(self):
        f = divergence_f(10 ** 6, 1000, 3, 10 ** 6, 1000)
        eps = epsilon_m(10 ** 6, 1000, 3)
        assert f == pytest.approx(2 * eps * math.log2(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            divergence_f(100, 10, 3, 10, 100)


class TestSampleBounds:
    def test_interval_brackets_share(self):
        lo, hi = sample_probability_bounds(0.25, 10 ** 8, 100, 3)
        assert lo <= 0.25 <= hi
        assert lo > 0.2  # eps is small at this m

    def test_clamped_at_zero(self):
        lo, __ = sample_probability_bounds(0.01, 1000, 1000, 3)
        assert lo == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_probability_bounds(1.5, 1000, 10, 3)


class TestBranchingProcess:
    def test_alpha_matches_eq1(self):
        a = alpha_s(3, 50, 10_000, 3, 1 << 20)
        expected = false_set_overlap_probability(50, 1 << 17, 10_000, 3)
        assert a == pytest.approx(expected)

    def test_alpha_decreases_with_depth(self):
        values = [alpha_s(d, 10, 10 ** 6, 3, 1 << 20) for d in range(0, 15, 3)]
        assert values == sorted(values, reverse=True)

    def test_expected_nodes_subcritical(self):
        assert expected_branching_nodes(0.0) == 0.0
        assert expected_branching_nodes(0.25) == pytest.approx(0.5)
        assert math.isinf(expected_branching_nodes(0.5))
        assert math.isinf(expected_branching_nodes(0.9))

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_branching_nodes(-0.1)
        with pytest.raises(ValueError):
            alpha_s(-1, 10, 100, 3, 1000)


class TestCriticalDepth:
    def test_formula(self):
        d = critical_depth(10 ** 6, 1000, 60_870, 3)
        expected = math.log2(10 ** 6 * 9 * 1000 / (60_870 * math.log(2)))
        assert d == pytest.approx(expected)

    def test_shrinks_with_m(self):
        assert critical_depth(10 ** 6, 1000, 10 ** 7, 3) < \
            critical_depth(10 ** 6, 1000, 10 ** 4, 3)

    def test_floor_at_zero(self):
        assert critical_depth(100, 1, 10 ** 9, 1) == 0.0


class TestNodeBounds:
    def test_sampling_bound_components(self):
        bound = expected_nodes_sampling(1 << 20, 1 << 10, 10 ** 6, 3, 100)
        assert bound == pytest.approx(10 + (1 << 20) * 9 * 100 / 10 ** 6)

    def test_reconstruction_bound_scales_with_n(self):
        small = expected_nodes_reconstruction(1 << 20, 1 << 10, 10 ** 6, 3, 10)
        large = expected_nodes_reconstruction(1 << 20, 1 << 10, 10 ** 6, 3, 100)
        assert large == pytest.approx(10 * small)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_nodes_sampling(10, 100, 10 ** 6, 3, 1)
        with pytest.raises(ValueError):
            expected_nodes_reconstruction(10, 100, 10 ** 6, 3, 1)
