"""Every example script must run end-to-end (scaled down)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

CASES = {
    "quickstart.py": ["--namespace", "20000", "--set-size", "200"],
    "twitter_communities.py": ["--namespace", "200000", "--users", "8000",
                               "--hashtags", "10"],
    "graph_adjacency.py": ["--vertices", "2000", "--walk-length", "6"],
    "hash_family_tradeoffs.py": ["--namespace", "10000", "--set-size",
                                 "150", "--rounds", "5"],
    "dynamic_membership.py": ["--namespace", "50000", "--population",
                              "3000"],
    "keyword_search.py": ["--documents", "20000", "--keywords", "40"],
    "serving_demo.py": ["--namespace", "60000", "--users", "4000",
                        "--hashtags", "10", "--requests", "200"],
}


def test_every_example_has_a_case():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES)


@pytest.mark.parametrize("script,args", sorted(CASES.items()))
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
