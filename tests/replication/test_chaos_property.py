"""The chaos property: a faulted ring answers like a never-crashed one.

A seeded :class:`~repro.faultinject.FaultSchedule` drives leader kills,
follower kills, hangs and pipe drops against a durable replicated ring
while writes and seeded reads flow.  The property, checked continuously
and again after healing:

* every acknowledged write is durable — visible after any fault, after
  a full stop, and after a torn-WAL-tail recovery;
* every seeded read is bit-identical (values *and* OpCounters) to a
  reference engine that ran the same writes and never crashed.

The schedule reproduces from its seed alone; a failure here names the
seed, so the exact fault sequence replays in isolation.
"""

import time

import numpy as np

from repro.api import BloomDB, SampleSpec
from repro.durability.wal import WriteAheadLog
from repro.faultinject import FaultInjector, FaultSchedule, tear_wal_tail
from repro.replication import ReplicatedShardPool
from repro.service import ServiceOverloadedError
from repro.service.client import encode_result
from tests.replication.conftest import wait_until

CHAOS_SEED = 20260808
STEPS = 20


def ref_answer(db: BloomDB, name: str, seed: int) -> dict:
    spec = SampleSpec(name, 3, False, seed=seed, key="ref")
    return encode_result(db.sample_many([spec]).ordered()[0])


def probe_with_retry(pool, name: str, seed: int, deadline_s: float = 60.0):
    """A seeded read that outlives faults: 503s retry, nothing hangs."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return pool.submit("sample", (name,), rounds=3,
                               replacement=False, seed=seed).result(60)
        except ServiceOverloadedError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def chaos_ids(step: int) -> np.ndarray:
    rng = np.random.default_rng(1_000 + step)
    return rng.choice(8_000, 60, replace=False).astype(np.uint64)


def test_chaos_schedule_preserves_acked_writes_and_bit_identity(
        repl_config, tmp_path):
    schedule = FaultSchedule.generate(CHAOS_SEED, steps=STEPS, shards=2,
                                      replication=2, rate=0.35)
    assert schedule.events, "a chaos run without faults proves nothing"

    reference = BloomDB.from_config(repl_config)
    pool = ReplicatedShardPool(
        tmp_path / "ring", workers=2, replication=2, durable=True,
        config=repl_config, heartbeat_s=0.05, hang_timeout_s=1.0)
    pool.start()
    injector = FaultInjector(pool)

    try:
        for step in range(STEPS):
            for event in schedule.at(step):
                try:
                    injector.apply(event)
                except (ValueError, ProcessLookupError):
                    pass  # the member is mid-respawn; the fault misses

            # Writes go through the parent-side write leader, so they
            # are acknowledged even mid-fault — and mirrored into the
            # never-crashed reference.
            name = f"chaos{step}"
            ids = chaos_ids(step)
            pool.add_set(name, ids)
            reference.add_set(name, ids)

            # Read-your-writes under fire, bit-identical to the
            # reference at the same logical state.
            assert probe_with_retry(pool, name, seed=500 + step) == \
                ref_answer(reference, name, seed=500 + step), \
                f"divergence at step {step} (schedule seed {CHAOS_SEED})"

        injector.clear()
        wait_until(lambda: pool.readyz()["ready"], deadline_s=60.0,
                   message="ring never healed after the chaos schedule")

        # Healed sweep: every acked write, probed enough times to hit
        # every replica of its group, matches the reference exactly.
        for step in range(STEPS):
            name = f"chaos{step}"
            want = ref_answer(reference, name, seed=900 + step)
            for _ in range(2 * pool.replication):
                assert probe_with_retry(pool, name, seed=900 + step) == want
    finally:
        injector.clear()
        pool.close()

    # -- torn-tail recovery: the offline half of the crash story -----------
    # Simulate a crash mid-append: an extra record lands in the durable
    # WAL but is torn before it is whole (it was never acknowledged).
    wal = WriteAheadLog(tmp_path / "ring" / "wal")
    wal.append("add_set", chaos_ids(99), epoch=999_999, name="never-acked")
    wal.flush()
    wal.close()
    tear_wal_tail(tmp_path / "ring" / "wal")

    revived = ReplicatedShardPool(
        tmp_path / "ring", workers=2, replication=2, durable=True,
        config=repl_config, heartbeat_s=0.05, hang_timeout_s=1.0)
    revived.start()
    try:
        wait_until(lambda: revived.readyz()["ready"], deadline_s=60.0,
                   message="ring never became ready after recovery")
        # The torn, unacknowledged record is gone; every acked write
        # survived, still bit-identical to the never-crashed reference.
        assert "never-acked" not in revived.leader.names()
        assert sorted(revived.leader.names()) == sorted(reference.names())
        for step in range(STEPS):
            name = f"chaos{step}"
            assert probe_with_retry(revived, name, seed=700 + step) == \
                ref_answer(reference, name, seed=700 + step), \
                f"post-recovery divergence on {name}"
    finally:
        revived.close()
