"""Shared fixtures for the replicated-serving suite.

One compiled/delta engine configuration (the process tier's
requirement), a deterministic six-set workload, and helpers to compare
pool answers bit-for-bit against the parent leader engine.  Pools are
expensive (R × N spawned processes), so fixtures keep them small and
fast: tiny heartbeats, 2 × 2 topologies.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig, SampleSpec
from repro.service.client import encode_result

NAMESPACE = 8_000

#: Tight-but-safe deadline for respawn / failover / readiness polls.
DEADLINE_S = 30.0


@pytest.fixture(scope="session")
def repl_config() -> EngineConfig:
    """Engine knobs shared by every pool and reference engine here."""
    return EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                        set_size=150, seed=5, plan="compiled",
                        mutation="delta", tree="dynamic")


@pytest.fixture(scope="session")
def repl_workload(repl_config) -> list[tuple[str, np.ndarray]]:
    """Deterministic (name, ids) pairs every consumer loads."""
    rng = np.random.default_rng(42)
    return [
        (f"set{i}", rng.choice(NAMESPACE, 150,
                               replace=False).astype(np.uint64))
        for i in range(6)
    ]


@pytest.fixture(scope="session")
def base_db(repl_config, repl_workload) -> BloomDB:
    """The loaded engine each test saves into its own serving dir."""
    db = BloomDB.from_config(repl_config)
    for name, ids in repl_workload:
        db.add_set(name, ids)
    return db


@pytest.fixture()
def engine_dir(base_db, tmp_path):
    """A fresh serving directory per test (pools mutate EPOCH/WALs)."""
    path = tmp_path / "engine"
    base_db.save(path)
    return path


def probe(pool, name, seed=4242, rounds=3):
    """One seeded sample through the pool (wire-format dict)."""
    return pool.submit("sample", (name,), rounds=rounds, replacement=False,
                       seed=seed).result(60)


def reference(pool, name, seed=4242, rounds=3):
    """The leader engine's answer for the same seeded sample."""
    spec = SampleSpec(name, rounds, False, seed=seed, key="ref")
    return encode_result(pool.leader.sample_many([spec]).ordered()[0])


def counter_total(pool, name) -> int:
    """Sum an exported counter across its label series."""
    return sum(pool.metrics.export()["counters"].get(name, {}).values())


def wait_until(predicate, deadline_s=DEADLINE_S, interval_s=0.05,
               message="condition not reached in time"):
    """Poll ``predicate`` until truthy; returns its value."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise AssertionError(message)
