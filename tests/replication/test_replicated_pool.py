"""The replicated pool's steady state: topology, fan-out, bit-identity.

Failure handling lives in ``test_failover.py``; here the ring is
healthy and the claims are structural — R × N members spawn and attach,
reads round-robin across a group's replicas, and every member's answer
is bit-identical (values *and* OpCounters) to the parent leader engine.
"""

import pytest

from repro.replication import ReplicatedShardPool, Supervisor
from tests.replication.conftest import probe, reference, wait_until


@pytest.fixture()
def pool(engine_dir):
    pool = ReplicatedShardPool(engine_dir, workers=2, replication=2,
                               heartbeat_s=0.05, hang_timeout_s=5.0)
    pool.start()
    yield pool
    pool.close()


class TestConstruction:
    def test_validation_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError, match="shard group"):
            ReplicatedShardPool(tmp_path, 0)
        with pytest.raises(ValueError, match="replication factor"):
            ReplicatedShardPool(tmp_path, 2, replication=0)
        with pytest.raises(ValueError, match="ack policy"):
            ReplicatedShardPool(tmp_path, 2, ack="eventually")
        with pytest.raises(ValueError, match="heartbeat_s"):
            ReplicatedShardPool(tmp_path, 2, heartbeat_s=0.0)

    def test_membership_changes_are_not_supported(self, pool):
        with pytest.raises(NotImplementedError):
            pool.add_worker()
        with pytest.raises(NotImplementedError):
            pool.remove_worker()


class TestTopology:
    def test_member_indexing(self, pool):
        assert pool.num_shards == 2
        assert pool.replication == 2
        assert pool.num_workers == 4
        assert pool.member_index(1, 1) == 3
        with pytest.raises(ValueError, match="shard group"):
            pool.member_index(2, 0)
        with pytest.raises(ValueError, match="replica slot"):
            pool.member_index(0, 2)

    def test_initial_roles_and_readiness(self, pool):
        infos = pool.workers_info()
        assert len(infos) == 4
        roles = {(w["shard"], w["slot"]): w["role"] for w in infos}
        assert roles == {(0, 0): "leader", (0, 1): "follower",
                         (1, 0): "leader", (1, 1): "follower"}
        assert all(w["alive"] for w in infos)

        payload = pool.readyz()
        assert payload["ready"] is True
        assert payload["mode"] == "process"
        assert payload["workers"] == 2
        assert payload["replication"] == 2
        assert payload["ack"] == "leader"
        assert len(payload["shards"]) == 2
        assert all(s["alive"] == 2 for s in payload["shards"])

    def test_epoch_state_records_the_topology(self, pool):
        state = pool.epoch_state()
        assert state["replication"] == 2
        assert state["leaders"] == [0, 0]
        assert state["workers"] == 4

    def test_describe_and_repr(self, pool):
        info = pool.describe()
        assert info["workers"] == 2
        assert info["replication"] == 2
        assert info["ack"] == "leader"
        assert info["processes"] == 4
        assert info["leaders"] == [0, 0]
        text = repr(pool)
        assert "shards=2" in text and "replication=2" in text

    def test_supervisor_runs_with_the_pool(self, pool):
        assert isinstance(pool.supervisor, Supervisor)
        assert pool.supervisor.running

    def test_shard_of_routes_over_groups(self, pool, repl_workload):
        for name, _ in repl_workload:
            assert 0 <= pool.shard_of(name) < pool.num_shards


class TestBitIdentity:
    def test_fanout_reads_are_bit_identical_across_members(
            self, pool, repl_workload):
        """2R probes with one seed must hit both replicas of the owner
        group (round-robin) and return the leader engine's exact answer,
        OpCounters included."""
        for name, _ in repl_workload:
            want = reference(pool, name)
            for _ in range(2 * pool.replication):
                assert probe(pool, name) == want

    def test_read_your_writes_through_followers(self, pool, repl_workload):
        import numpy as np
        rng = np.random.default_rng(7)
        fresh = rng.choice(8_000, 120, replace=False).astype(np.uint64)
        pool.add_set("fresh", fresh)
        want = reference(pool, "fresh", seed=31337)
        # Every member must already see the write: the fan-out flushed
        # the record into each replica's log before the ack, and each
        # replica refreshes to its log tail before executing a batch.
        for _ in range(2 * pool.replication):
            assert probe(pool, "fresh", seed=31337) == want

    def test_leader_first_routing_without_fanout(self, engine_dir):
        pool = ReplicatedShardPool(engine_dir, workers=1, replication=2,
                                   heartbeat_s=0.05, read_fanout=False)
        pool.start()
        try:
            leader = pool.leader_member(0)
            for name in ("set0", "set1", "set2"):
                assert pool._route(name) == leader
        finally:
            pool.close()


class TestReplicationMetrics:
    def test_shipping_counter_and_gauges(self, pool):
        import numpy as np
        before = pool._shipped
        pool.insert_ids(np.arange(7000, 7032, dtype=np.uint64))
        assert pool._shipped == before + 1  # one record, every log

        # Followers apply at the next heartbeat; wait for lag to drain
        # so the gauge assertions are deterministic.
        wait_until(lambda: pool.replication_status()["lag_max"] == 0,
                   message="replication lag never drained")
        text = pool.metrics_text()
        assert "replication_factor 2" in text
        assert "replication_lag_max 0" in text
        assert 'replication_lag{shard="00"} 0' in text
        assert "replication_records_shipped_total" in text

    def test_fleet_export_labels_replicas(self, pool, repl_workload):
        probe(pool, repl_workload[0][0])
        merged = pool.fleet_export()
        labelled = [key for series in merged["counters"].values()
                    for key in series if "replica" in key]
        assert labelled, "per-replica relabelled series missing"
