"""Failure handling: promotion, hang detection, pipe recovery, quorum.

Every scenario here is the acceptance story in miniature: break one
member of a replicated ring under traffic and prove that (a) no
acknowledged write is lost, (b) seeded reads stay bit-identical to the
pre-fault answers, and (c) the ring heals back to ready.
"""

import subprocess
import sys
import threading
import time
import types

import numpy as np
import pytest

from repro.durability.recovery import inspect_wal
from repro.faultinject import FaultInjector
from repro.obs.metrics import Metrics
from repro.replication import (
    ReplicatedShardPool,
    ReplicationLagError,
    Supervisor,
)
from repro.service import ServiceOverloadedError
from repro.service.http import status_for
from tests.replication.conftest import (
    counter_total,
    probe,
    reference,
    wait_until,
)


@pytest.fixture()
def pool(engine_dir):
    pool = ReplicatedShardPool(engine_dir, workers=2, replication=2,
                               heartbeat_s=0.05, hang_timeout_s=1.0)
    pool.start()
    yield pool
    pool.close()


def snapshot_reads(pool, workload, seed_base=123):
    return {name: probe(pool, name, seed=seed_base + i)
            for i, (name, _) in enumerate(workload)}


class TestSupervisorUnit:
    """Deterministic supervision passes against scripted handles.

    Real subprocesses (so the SIGKILL lands somewhere) but fake handle
    state, driven through one explicit ``check()`` — no background loop,
    no races.
    """

    def _handle(self, shard_id=0, *, ready=True, stale=False,
                pipe_torn=False, stop_requested=False):
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])

        class _Process:
            pid = proc.pid

            @staticmethod
            def is_alive():
                return proc.poll() is None

        event = threading.Event()
        if ready:
            event.set()
        return types.SimpleNamespace(
            shard_id=shard_id, process=_Process, ready=event,
            stop_requested=stop_requested, pipe_torn=pipe_torn,
            last_heartbeat=time.monotonic() - (10.0 if stale else 0.0),
            _popen=proc)

    def _supervise(self, *handles):
        pool = types.SimpleNamespace(_workers=list(handles),
                                     _stopping=False, metrics=Metrics())
        return pool, Supervisor(pool, hang_timeout_s=2.0)

    def _reap(self, *handles):
        for handle in handles:
            handle._popen.kill()
            handle._popen.wait()

    def test_fresh_heartbeat_is_left_alone(self):
        handle = self._handle()
        pool, supervisor = self._supervise(handle)
        try:
            assert supervisor.check() == []
            assert handle.process.is_alive()
        finally:
            self._reap(handle)

    def test_stale_ready_worker_is_shot(self):
        handle = self._handle(stale=True)
        pool, supervisor = self._supervise(handle)
        try:
            assert supervisor.check() == [0]
            handle._popen.wait(timeout=10)
            assert not handle.process.is_alive()
            assert counter_total(pool, "worker_hangs") == 1
        finally:
            self._reap(handle)

    def test_attaching_worker_is_not_a_hang(self):
        """A spawning member cannot heartbeat; silence there is not
        evidence — killing it would loop the respawn forever."""
        handle = self._handle(stale=True, ready=False)
        pool, supervisor = self._supervise(handle)
        try:
            assert supervisor.check() == []
            assert handle.process.is_alive()
        finally:
            self._reap(handle)

    def test_torn_pipe_is_shot_even_with_fresh_heartbeat(self):
        handle = self._handle(pipe_torn=True)
        pool, supervisor = self._supervise(handle)
        try:
            assert supervisor.check() == [0]
            handle._popen.wait(timeout=10)
            assert counter_total(pool, "worker_pipe_drops") == 1
        finally:
            self._reap(handle)

    def test_draining_worker_is_left_alone(self):
        handle = self._handle(stale=True, stop_requested=True)
        pool, supervisor = self._supervise(handle)
        try:
            assert supervisor.check() == []
            assert handle.process.is_alive()
        finally:
            self._reap(handle)


class TestLeaderFailover:
    def test_kill_leader_promotes_and_keeps_answers_bit_identical(
            self, pool, repl_workload):
        rng = np.random.default_rng(17)
        pool.add_set("acked", rng.choice(
            8_000, 100, replace=False).astype(np.uint64))
        pre = snapshot_reads(pool, repl_workload)
        pre["acked"] = probe(pool, "acked", seed=999)

        assert pool.leader_slot(0) == 0
        pid = pool.kill_leader(0)
        assert pid is not None

        wait_until(lambda: counter_total(pool, "replication_failovers") >= 1,
                   message="leader death never triggered promotion")
        assert pool.leader_slot(0) == 1
        # The promotion is durable: EPOCH names the new leader so a
        # restart (or another serving process) agrees on the topology.
        assert pool.epoch_state()["leaders"] == pool._leaders

        # Zero acknowledged-write loss, bit-identical seeded reads —
        # the promoted follower already held every acked record.
        post = snapshot_reads(pool, repl_workload)
        post["acked"] = probe(pool, "acked", seed=999)
        assert post == pre

        # The dead slot respawns as a follower and the ring heals.
        wait_until(lambda: pool.readyz()["ready"],
                   message="ring never became ready after failover")
        roles = {(w["shard"], w["slot"]): w["role"]
                 for w in pool.workers_info()}
        assert roles[(0, 1)] == "leader"
        assert roles[(0, 0)] == "follower"

    def test_kill_follower_does_not_change_leadership(
            self, pool, repl_workload):
        pre = snapshot_reads(pool, repl_workload)
        leaders_before = list(pool._leaders)
        failovers_before = counter_total(pool, "replication_failovers")

        pool.kill_follower(0)
        with pytest.raises(ValueError, match="leader"):
            pool.kill_follower(0, slot=pool.leader_slot(0))

        wait_until(lambda: pool.readyz()["ready"],
                   message="follower never rejoined")
        assert pool._leaders == leaders_before
        assert counter_total(pool,
                             "replication_failovers") == failovers_before
        assert snapshot_reads(pool, repl_workload) == pre


class TestHangDetection:
    def test_hung_leader_is_shot_and_replaced(self, pool, repl_workload):
        pre = snapshot_reads(pool, repl_workload)
        injector = FaultInjector(pool)
        injector.hang(0, pool.leader_slot(0))
        try:
            # SIGSTOP leaves the process alive, so only the heartbeat
            # supervisor can catch it: stale stamp -> SIGKILL -> the
            # normal death path (promotion + respawn) takes over.
            wait_until(lambda: counter_total(pool, "worker_hangs") >= 1,
                       message="the hang was never detected")
            wait_until(
                lambda: counter_total(pool, "replication_failovers") >= 1,
                message="the shot leader was never replaced")
            wait_until(lambda: pool.readyz()["ready"],
                       message="ring never healed after the hang")
            assert snapshot_reads(pool, repl_workload) == pre
        finally:
            injector.clear()


class TestPipeDropRecovery:
    def test_dropped_pipe_is_detected_and_member_respawned(
            self, pool, repl_workload):
        pre = snapshot_reads(pool, repl_workload)
        injector = FaultInjector(pool)
        victim = injector.pipe_drop(0, 1)
        assert pool._workers[victim].pipe_torn

        wait_until(lambda: counter_total(pool, "worker_pipe_drops") >= 1,
                   message="the torn pipe was never detected")
        wait_until(lambda: pool.readyz()["ready"],
                   message="member never rejoined after the pipe drop")
        assert not pool._workers[victim].pipe_torn  # fresh queues
        assert snapshot_reads(pool, repl_workload) == pre


class TestQuorumAcks:
    def test_lag_error_is_a_503(self):
        exc = ReplicationLagError("no quorum")
        assert isinstance(exc, ServiceOverloadedError)
        assert status_for(exc) == 503

    def test_quorum_blocks_without_majority_and_recovers(self, engine_dir):
        pool = ReplicatedShardPool(
            engine_dir, workers=1, replication=3, ack="quorum",
            ack_timeout_s=1.5, heartbeat_s=0.05, hang_timeout_s=60.0,
            read_fanout=False)
        pool.start()
        injector = FaultInjector(pool)
        try:
            rng = np.random.default_rng(23)
            ids_a = rng.choice(8_000, 90, replace=False).astype(np.uint64)
            ids_b = rng.choice(8_000, 90, replace=False).astype(np.uint64)

            # Healthy group: the majority confirms within a heartbeat.
            pool.add_set("healthy", ids_a)

            # Stop 2 of 3 replicas: alive but silent, so the quorum of 2
            # cannot form (the hang timeout is huge so the supervisor
            # does not bail the test out by shooting them).
            injector.hang(0, 1)
            injector.hang(0, 2)
            with pytest.raises(ReplicationLagError):
                pool.add_set("unacked", ids_b)

            # The write was refused an ack, not lost: it is durable in
            # the leader engine and in every shipped log.
            want = reference(pool, "unacked", seed=77)

            injector.resume()
            # The unacknowledged write is visible, bit-identical, from
            # the ring (members refresh to the log tail before serving)...
            assert probe(pool, "unacked", seed=77) == want
            # ...and once the followers catch up, acks flow again.
            pool.add_set("after", rng.choice(
                8_000, 50, replace=False).astype(np.uint64))
        finally:
            injector.clear()
            pool.close()


class TestCleanShutdownMarkers:
    def test_every_member_log_is_marked_clean_after_faults(
            self, repl_config, tmp_path):
        """Regression: a graceful stop must drain *followers* too.

        Before the replicated tier, ``close()`` only marked the leader's
        WAL clean; follower/worker logs were left unmarked, forcing a
        full rescan on the next boot.  Now every member log carries the
        CLEAN marker — even for members that were kill -9'd and
        respawned mid-run.
        """
        pool = ReplicatedShardPool(
            tmp_path / "durable", workers=2, replication=2, durable=True,
            config=repl_config, heartbeat_s=0.05, hang_timeout_s=1.0)
        pool.start()
        try:
            rng = np.random.default_rng(31)
            pool.add_set("a", rng.choice(
                8_000, 120, replace=False).astype(np.uint64))

            injector = FaultInjector(pool)
            restarts = pool.workers_info()[1]["restarts"]
            injector.kill9(0, 1)
            wait_until(
                lambda: (pool.workers_info()[1]["alive"]
                         and pool.workers_info()[1]["restarts"] > restarts),
                message="killed follower never respawned")
            wait_until(lambda: pool.readyz()["ready"],
                       message="ring never healed before shutdown")

            pool.add_set("b", rng.choice(
                8_000, 80, replace=False).astype(np.uint64))
        finally:
            pool.close()

        report = inspect_wal(tmp_path / "durable")
        assert report["clean_shutdown"], "leader WAL lost its CLEAN marker"
        logs = report["worker_logs"]
        assert len(logs) == 4
        for entry in logs:
            assert entry["clean_shutdown"], \
                f"member log {entry['worker']} missing its CLEAN marker"
            assert not entry["torn_tail"]
