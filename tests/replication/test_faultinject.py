"""The fault-injection harness itself: seeded schedules and torn tails.

The chaos suite's credibility rests on these primitives being
deterministic (a schedule reproduces from its seed alone) and honest
(a torn tail really is the on-disk signature of a crash mid-append),
so they get direct tests before anything is injected into a pool.
"""

import numpy as np
import pytest

from repro.durability.wal import WriteAheadLog, scan_log, set_fsync_stall
from repro.faultinject import (
    DEFAULT_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    tear_wal_tail,
)


class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(7, steps=60, shards=2, replication=2)
        b = FaultSchedule.generate(7, steps=60, shards=2, replication=2)
        assert a == b
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        a = FaultSchedule.generate(7, steps=60, shards=2, replication=2)
        b = FaultSchedule.generate(8, steps=60, shards=2, replication=2)
        assert a.events != b.events

    def test_events_stay_in_bounds(self):
        schedule = FaultSchedule.generate(
            11, steps=200, shards=3, replication=2, kinds=FAULT_KINDS,
            rate=0.5)
        assert schedule.events, "rate=0.5 over 200 steps produced nothing"
        for event in schedule.events:
            assert 0 <= event.step < 200
            assert event.kind in FAULT_KINDS
            assert 0 <= event.shard < 3
            assert 0 <= event.slot < 2
            if event.kind == "slow_fsync":
                assert 0.005 <= event.seconds <= 0.05
            else:
                assert event.seconds == 0.0

    def test_at_partitions_the_events(self):
        schedule = FaultSchedule.generate(3, steps=50, shards=2,
                                          replication=3, rate=0.4)
        gathered = [e for step in range(50) for e in schedule.at(step)]
        assert gathered == list(schedule.events)

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSchedule.generate(1, steps=10, shards=2, rate=1.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultSchedule.generate(1, steps=10, shards=2,
                                   kinds=("kill9", "meteor"))

    def test_default_kinds_skip_pacing_faults(self):
        assert "slow_fsync" not in DEFAULT_KINDS
        assert "resume" not in DEFAULT_KINDS

    def test_event_describe_is_jsonable(self):
        event = FaultEvent(step=4, kind="hang", shard=1, slot=0)
        assert event.describe() == {"step": 4, "kind": "hang", "shard": 1,
                                    "slot": 0, "seconds": 0.0}


class TestFaultInjectorDispatch:
    def test_unknown_kind_raises(self):
        injector = FaultInjector(pool=None)
        with pytest.raises(ValueError, match="unknown fault kind"):
            injector.apply(FaultEvent(step=0, kind="meteor"))

    def test_resume_with_nothing_stopped_is_a_noop(self):
        assert FaultInjector(pool=None).resume() == 0


class TestSlowFsync:
    def test_set_returns_previous_value(self):
        assert set_fsync_stall(0.01) == 0.0
        try:
            assert set_fsync_stall(0.02) == 0.01
        finally:
            assert set_fsync_stall(0.0) == 0.02

    def test_injector_clear_removes_the_stall(self):
        injector = FaultInjector(pool=None)
        injector.slow_fsync(0.01)
        injector.clear()
        # A fresh set sees 0.0 as the previous value: the stall is gone.
        assert set_fsync_stall(0.0) == 0.0

    def test_negative_stall_clamps_to_zero(self):
        set_fsync_stall(-1.0)
        assert set_fsync_stall(0.0) == 0.0


class TestTearWalTail:
    def _write_log(self, directory, records=5):
        wal = WriteAheadLog(directory, sync="batch")
        for i in range(records):
            wal.append("insert", np.arange(i, i + 8, dtype=np.uint64),
                       epoch=i, name=f"set{i}")
        wal.flush()
        wal.mark_clean()
        wal.close()
        return wal

    def test_tear_produces_a_torn_tail(self, tmp_path):
        self._write_log(tmp_path / "wal")
        before = scan_log(tmp_path / "wal")
        assert before.clean and not before.torn_tail
        assert len(before.records) == 5

        summary = tear_wal_tail(tmp_path / "wal")
        after = scan_log(tmp_path / "wal")
        assert after.torn_tail, "the cut must land inside the last record"
        assert not after.clean, "a torn log must not claim a clean shutdown"
        # Replay ends at the last *whole* record; only the torn one is
        # lost — exactly what a kill -9 mid-append costs.
        assert len(after.records) == 4
        assert summary["lost"] > 0
        assert summary["record_start"] < summary["cut"]

    def test_tear_is_seeded(self, tmp_path):
        import random
        self._write_log(tmp_path / "a")
        self._write_log(tmp_path / "b")
        cut_a = tear_wal_tail(tmp_path / "a", random.Random(99))["cut"]
        cut_b = tear_wal_tail(tmp_path / "b", random.Random(99))["cut"]
        assert cut_a == cut_b

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="no WAL segments"):
            tear_wal_tail(tmp_path / "empty")

    def test_writer_repairs_a_torn_tail(self, tmp_path):
        """The torn log is exactly what crash repair already absorbs."""
        self._write_log(tmp_path / "wal")
        tear_wal_tail(tmp_path / "wal")
        wal = WriteAheadLog(tmp_path / "wal")
        try:
            assert wal.torn_tail, "reopen must detect (and truncate) the tear"
            assert not wal.was_clean
            assert len(wal.replay()) == 4
        finally:
            wal.close()
