"""Smoke tests for the table/figure row producers and the formatter."""

import pytest

from repro.experiments.figures import (
    full_tree_memory_mb,
    hash_family_rows,
    pruned_namespace_rows,
    reconstruction_ops_rows,
    sampling_ops_rows,
)
from repro.experiments.formatting import format_rows
from repro.experiments.runner import TreeCache
from repro.experiments.tables import (
    PAPER_TABLE2_M,
    chi_squared_rows,
    creation_time_rows,
    measured_accuracy_rows,
    parameter_rows,
)

M = 20_000


@pytest.fixture(scope="module")
def cache():
    return TreeCache()


class TestFormatting:
    def test_aligned_output(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": None}]
        text = format_rows(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "222" in text and "-" in text

    def test_empty(self):
        assert "(no rows)" in format_rows([])

    def test_column_selection(self):
        text = format_rows([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestTables:
    def test_table2_matches_paper(self):
        rows = parameter_rows(1_000_000)
        for row in rows:
            if "paper_m" in row:
                assert abs(row["m_ratio"] - 1.0) < 0.005
        assert {row["accuracy"] for row in rows} == set(PAPER_TABLE2_M)

    def test_creation_time_rows(self):
        rows = creation_time_rows((M,), accuracies=(0.8,), n=100)
        assert len(rows) == 1
        assert rows[0]["create_s"] >= 0
        assert rows[0]["nodes"] >= 1

    def test_chi_squared_rows(self, cache):
        rows = chi_squared_rows(cache, M, set_sizes=(32,),
                                accuracies=(0.9,), rounds_per_element=20,
                                samplers=("exact",))
        assert len(rows) == 1
        assert 0 <= rows[0]["p_exact"] <= 1

    def test_measured_accuracy_rows(self, cache):
        rows = measured_accuracy_rows(cache, (M,), (0.8,), n=100, rounds=50)
        assert len(rows) == 1
        assert 0 <= rows[0]["measured"] <= 1
        assert rows[0]["model"] >= 0.8


class TestFigures:
    def test_sampling_ops_rows(self, cache):
        rows = sampling_ops_rows(cache, M, (64,), (0.8,), "uniform",
                                 rounds=10, da_rounds=1)
        methods = [r["method"] for r in rows]
        assert methods == ["BST", "DA"]

    def test_hash_family_rows(self, cache):
        rows = hash_family_rows(cache, M, 64, (0.8,), rounds=5, da_rounds=1,
                                families=("simple", "murmur3"))
        assert {r["family"] for r in rows} == {"simple", "murmur3"}

    def test_reconstruction_ops_rows(self, cache):
        rows = reconstruction_ops_rows(cache, M, (64,), (0.8,), "uniform",
                                       rounds=1)
        assert [r["method"] for r in rows] == ["BST", "HI", "DA"]

    def test_pruned_namespace_rows(self):
        rows = pruned_namespace_rows(
            fractions=(0.2, 0.6), rounds=5, namespace_size=50_000,
            num_users=2_000, num_hashtags=8, depth=5)
        assert len(rows) == 4  # 2 fractions x 2 modes
        assert {r["mode"] for r in rows} == {"uniform", "clustered"}
        for mode in ("uniform", "clustered"):
            subset = [r for r in rows if r["mode"] == mode]
            assert subset[0]["occupied"] <= subset[1]["occupied"]

    def test_full_tree_memory(self):
        assert full_tree_memory_mb(1 << 20, 7, 64_000) == pytest.approx(
            255 * 8000 / 1e6)
