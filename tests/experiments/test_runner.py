"""Tests for the experiment runner primitives (scaled down)."""

import pytest

from repro.core.bloom import BloomFilter
from repro.core.sampling import BSTSampler
from repro.experiments.runner import (
    TreeCache,
    bst_sampling_row,
    da_sampling_row,
    make_query_set,
    pruned_namespace_row,
    reconstruction_rows,
    reconstruction_trial,
    sampling_trial,
)
from repro.workloads.twitter import SyntheticTwitterDataset

M = 10_000


@pytest.fixture(scope="module")
def cache():
    return TreeCache()


class TestTreeCache:
    def test_reuses_trees(self, cache):
        a = cache.tree(M, 4096, 3, "murmur3")
        b = cache.tree(M, 4096, 3, "murmur3")
        assert a is b

    def test_distinct_keys_distinct_trees(self, cache):
        a = cache.tree(M, 4096, 3, "murmur3")
        b = cache.tree(M, 4096, 4, "murmur3")
        assert a is not b

    def test_clear(self):
        local = TreeCache()
        a = local.tree(M, 2048, 2, "murmur3")
        local.clear()
        b = local.tree(M, 2048, 2, "murmur3")
        assert a is not b


class TestTrials:
    def test_sampling_trial_aggregates(self, cache):
        tree = cache.tree(M, 8192, 4, "murmur3")
        secret = make_query_set(M, 64, "uniform", rng=0)
        query = BloomFilter.from_items(secret, tree.family)
        trial = sampling_trial(BSTSampler(tree, rng=0), query, secret,
                               rounds=20, method="BST")
        assert trial.rounds == 20
        assert trial.mean_intersections > 0
        assert trial.mean_memberships > 0
        assert 0 <= trial.accuracy <= 1
        row = trial.as_row()
        assert row["method"] == "BST"
        assert set(row) >= {"intersections", "memberships", "time_ms",
                            "accuracy"}

    def test_reconstruction_trial_metrics(self, cache):
        tree = cache.tree(M, 8192, 4, "murmur3")
        secret = make_query_set(M, 64, "uniform", rng=1)
        query = BloomFilter.from_items(secret, tree.family)
        from repro.core.reconstruct import BSTReconstructor
        reconstructor = BSTReconstructor(tree, exhaustive=True)

        def fn(q):
            result = reconstructor.reconstruct(q)
            return result.elements, result.ops

        trial = reconstruction_trial(fn, query, secret, rounds=2,
                                     method="BST")
        assert trial.recall == 1.0
        assert trial.precision > 0.9
        assert trial.mean_memberships == M

    def test_make_query_set_kinds(self):
        uni = make_query_set(M, 50, "uniform", rng=0)
        clu = make_query_set(M, 50, "clustered", rng=0)
        assert len(uni) == len(clu) == 50
        with pytest.raises(ValueError):
            make_query_set(M, 50, "zigzag")


class TestRowProducers:
    def test_bst_row_keys(self, cache):
        row = bst_sampling_row(cache, M, 64, 0.9, "uniform", rounds=10)
        assert row["method"] == "BST"
        assert row["M"] == M
        assert row["memberships"] > 0
        assert row["intersections"] > 0

    def test_da_row_costs_namespace(self, cache):
        row = da_sampling_row(cache, M, 64, 0.9, "uniform", rounds=2)
        assert row["method"] == "DA"
        assert row["memberships"] == M
        assert row["intersections"] == 0

    def test_reconstruction_rows_all_methods(self, cache):
        rows = reconstruction_rows(cache, M, 64, 0.9, "uniform", rounds=1)
        assert [r["method"] for r in rows] == ["BST", "HI", "DA"]
        da_row = rows[-1]
        assert da_row["memberships"] == M
        assert da_row["recall"] == 1.0

    def test_pruned_row(self):
        dataset = SyntheticTwitterDataset.generate(
            namespace_size=50_000, num_users=2_000, num_hashtags=10,
            min_audience=30, max_audience=200, rng=0)
        row = pruned_namespace_row(dataset, fraction=0.5, mode="uniform",
                                   depth=5, m=16_384, rounds=10)
        assert row["occupied"] > 0
        assert row["nodes"] <= (1 << 6) - 1
        assert row["memory_mb"] > 0
        assert 0 <= row["accuracy"] <= 1
