"""Tests for experiment scales and configuration."""

import pytest

from repro.experiments.config import (
    SCALES,
    current_scale,
    paper_parameters,
)


def test_all_scales_present():
    assert set(SCALES) == {"small", "default", "full"}


def test_full_scale_is_paper_grid():
    full = SCALES["full"]
    assert 10_000_000 in full.namespace_sizes
    assert 50_000 in full.set_sizes
    assert full.sampling_rounds == 10_000
    assert full.accuracies == (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_scales_ordered_by_size():
    assert SCALES["small"].sampling_rounds < \
        SCALES["default"].sampling_rounds < SCALES["full"].sampling_rounds


def test_set_sizes_for_filters_large_sets():
    full = SCALES["full"]
    assert 50_000 not in full.set_sizes_for(100_000)
    assert 50_000 in full.set_sizes_for(10_000_000)


def test_current_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "small")
    assert current_scale().name == "small"
    monkeypatch.setenv("REPRO_SCALE", "FULL")
    assert current_scale().name == "full"
    monkeypatch.delenv("REPRO_SCALE")
    assert current_scale().name == "default"
    monkeypatch.setenv("REPRO_SCALE", "huge")
    with pytest.raises(ValueError):
        current_scale()


def test_paper_parameters():
    params = paper_parameters()
    assert params["namespace_size"] == 10_000_000
    assert params["k"] == 3
    assert "simple" in params["families"]
