"""WAL format and handle behaviour: records, rotation, torn tails, markers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.durability.wal import (
    CLEAN_MARKER,
    CorruptWalError,
    WriteAheadLog,
    decode_payload,
    encode_record,
    scan_log,
)

IDS = np.arange(10, 60, 3, dtype=np.uint64)


def test_record_roundtrip():
    blob = encode_record("insert", 42, "", IDS)
    record = decode_payload(blob[8:])
    assert record.op == "insert"
    assert record.epoch == 42
    assert record.name == ""
    assert np.array_equal(record.ids, IDS)


def test_record_roundtrip_with_name_and_empty_ids():
    blob = encode_record("add_set", 3, "café/sets", np.empty(0, np.uint64))
    record = decode_payload(blob[8:])
    assert record.op == "add_set"
    assert record.name == "café/sets"
    assert record.ids.size == 0
    assert record.describe() == {"op": "add_set", "epoch": 3,
                                 "name": "café/sets", "ids": 0}


def test_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown WAL op"):
        encode_record("destroy", 1, "", IDS)


def test_append_replay_across_rotation(tmp_path):
    wal = WriteAheadLog(tmp_path, sync="off", segment_bytes=64)
    for epoch in range(2, 12):
        wal.append("insert", IDS, epoch=epoch)
    assert len(wal.segments()) > 1  # 64-byte segments force rotation
    records = wal.replay()
    assert [r.epoch for r in records] == list(range(2, 12))
    assert all(np.array_equal(r.ids, IDS) for r in records)
    wal.close()

    # Reopening appends to the same log.
    wal2 = WriteAheadLog(tmp_path, sync="off", segment_bytes=64)
    wal2.append("retire", IDS[:4], epoch=12)
    assert [r.epoch for r in wal2.replay()] == list(range(2, 13))
    wal2.close()


def test_torn_tail_truncated_on_open(tmp_path):
    wal = WriteAheadLog(tmp_path, sync="batch")
    wal.append("insert", IDS, epoch=2)
    wal.append("insert", IDS, epoch=3)
    wal.close()
    # A kill -9 mid-append leaves a partial record at the tail.
    with open(wal.segment_path, "ab") as fh:
        fh.write(encode_record("insert", 4, "", IDS)[:11])

    scan = scan_log(tmp_path)
    assert scan.torn_tail
    assert [r.epoch for r in scan.records] == [2, 3]

    repaired = WriteAheadLog(tmp_path)
    assert repaired.torn_tail
    assert [r.epoch for r in repaired.replay()] == [2, 3]
    # The tail was physically truncated: appends continue cleanly.
    repaired.append("insert", IDS, epoch=4)
    assert [r.epoch for r in repaired.replay()] == [2, 3, 4]
    repaired.close()


def test_corruption_in_non_final_segment_is_fatal(tmp_path):
    wal = WriteAheadLog(tmp_path, sync="off", segment_bytes=64)
    for epoch in range(2, 8):
        wal.append("insert", IDS, epoch=epoch)
    wal.close()
    segments = wal.segments()
    assert len(segments) > 2
    # Damage the middle of the FIRST segment: not a crash signature.
    with open(segments[0], "r+b") as fh:
        fh.seek(12)
        fh.write(b"\xde\xad\xbe\xef")
    with pytest.raises(CorruptWalError, match="non-final"):
        scan_log(tmp_path)


def test_truncate_garbage_collects_and_stamps_checkpoint(tmp_path):
    wal = WriteAheadLog(tmp_path, sync="off", segment_bytes=64)
    for epoch in range(2, 10):
        wal.append("insert", IDS, epoch=epoch)
    before = len(wal.segments())
    removed = wal.truncate(9)
    assert removed == before
    records = wal.replay()
    assert [r.op for r in records] == ["checkpoint"]
    assert records[0].epoch == 9
    # Post-truncation appends land after the checkpoint record.
    wal.append("insert", IDS, epoch=10)
    assert [r.op for r in wal.replay()] == ["checkpoint", "insert"]
    wal.close()


def test_clean_marker_honoured_only_if_log_unmoved(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append("insert", IDS, epoch=2)
    wal.mark_clean()
    wal.close()
    assert scan_log(tmp_path).clean

    wal2 = WriteAheadLog(tmp_path)
    assert wal2.was_clean
    # The marker is consumed at open: it would lie once we append.
    assert not (tmp_path / CLEAN_MARKER).exists()
    wal2.append("insert", IDS, epoch=3)
    wal2.mark_clean()
    # A marker describing a shorter log than reality is ignored.
    wal2.append("insert", IDS, epoch=4)
    wal2.close()
    assert not scan_log(tmp_path).clean
    wal3 = WriteAheadLog(tmp_path)
    assert not wal3.was_clean
    wal3.close()


@pytest.mark.parametrize("sync", ["always", "batch", "off"])
def test_sync_policies_all_append_and_flush(tmp_path, sync):
    wal = WriteAheadLog(tmp_path / sync, sync=sync)
    wal.append("insert", IDS, epoch=2)
    wal.flush()
    assert [r.epoch for r in wal.replay()] == [2]
    wal.close()


def test_invalid_parameters_rejected(tmp_path):
    with pytest.raises(ValueError, match="sync policy"):
        WriteAheadLog(tmp_path, sync="sometimes")
    with pytest.raises(ValueError, match="segment_bytes"):
        WriteAheadLog(tmp_path, segment_bytes=0)


def test_closed_wal_refuses_writes(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.close()
    wal.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        wal.append("insert", IDS, epoch=2)
    with pytest.raises(ValueError, match="closed"):
        wal.truncate(2)


def test_tail_bytes_counts_all_segments(tmp_path):
    wal = WriteAheadLog(tmp_path, sync="off", segment_bytes=64)
    for epoch in range(2, 8):
        wal.append("insert", IDS, epoch=epoch)
    wal.flush()
    assert wal.tail_bytes() == sum(
        s.stat().st_size for s in wal.segments())
    wal.close()
