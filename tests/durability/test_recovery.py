"""Crash recovery: snapshot + WAL replay must equal the never-crashed run.

The central property (ISSUE 6 acceptance): after *any* crash — including
a WAL truncated at an arbitrary byte offset, mid-record — recovery comes
back bit-identical to a reference engine that simply stopped after the
same prefix of durable mutations, verified through seeded
``sample_many`` draws.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.api import BloomDB, DurabilityError, EngineConfig
from repro.api.batch import SampleSpec
from repro.durability import (
    CorruptWalError,
    init_ring,
    inspect_wal,
    open_durable,
    recover_engine,
    recover_ring,
)
from repro.durability.recovery import WAL_DIR
from repro.service import BloomService, ServiceConfig

NAMESPACE = 4_096
SET_IDS = np.arange(10, 2_000, 7, dtype=np.uint64)


def _config(**overrides) -> EngineConfig:
    knobs = dict(namespace_size=NAMESPACE, accuracy=0.9, set_size=200,
                 tree="dynamic", seed=11)
    knobs.update(overrides)
    return EngineConfig(**knobs)


def _draw(db: BloomDB, name: str = "s", seed: int = 99) -> np.ndarray:
    report = db.sample_many([SampleSpec(name=name, rounds=24, seed=seed)])
    (result,) = report.results.values()
    return np.asarray(result.values)


def _mutation_batches() -> list[tuple[str, np.ndarray]]:
    """Deterministic effective batches (every one journals one record)."""
    batches = []
    base = 2_100
    for j in range(6):
        ids = np.arange(base, base + 40, dtype=np.uint64)
        batches.append(("insert", ids))
        batches.append(("retire", ids[::2]))
        base += 50
    return batches


def _apply(db: BloomDB, batches) -> None:
    for kind, ids in batches:
        if kind == "insert":
            db.insert_ids(ids)
        else:
            db.retire_ids(ids)


# -- single-engine recovery -----------------------------------------------------


def test_open_durable_creates_then_recovers(tmp_path):
    db, report = open_durable(tmp_path / "e", _config())
    assert db.config.durability == "wal"
    assert db.config.plan == "compiled"
    assert db.wal is not None
    assert report.records_scanned == 0
    db.wal.close()

    db2, report2 = recover_engine(tmp_path / "e")
    assert report2.snapshot_epoch == 1
    db2.wal.close()


def test_recovery_restores_exact_epoch_and_samples(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    _apply(db, _mutation_batches())
    expected_epoch = db.current_epoch().epoch
    expected = _draw(db)
    db.wal.close()  # crash: no checkpoint, no clean marker

    db2, report = recover_engine(tmp_path / "e")
    assert db2.current_epoch().epoch == expected_epoch
    assert report.recovered_epoch == expected_epoch
    assert not report.clean_shutdown
    assert np.array_equal(_draw(db2), expected)
    db2.wal.close()


def test_checkpoint_truncates_and_bounds_replay(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    _apply(db, _mutation_batches()[:4])
    summary = db.checkpoint()
    assert summary["epoch"] == db.current_epoch().epoch
    assert summary["wal_segments_removed"] >= 1
    _apply(db, _mutation_batches()[4:6])
    expected = _draw(db)
    expected_epoch = db.current_epoch().epoch
    db.wal.close()

    db2, report = recover_engine(tmp_path / "e")
    assert report.snapshot_epoch == summary["epoch"]
    # Only the post-checkpoint tail replays.
    assert report.records_replayed == 2
    assert db2.current_epoch().epoch == expected_epoch
    assert np.array_equal(_draw(db2), expected)
    db2.wal.close()


def test_crash_recovery_property_random_truncation(tmp_path):
    """Truncate the WAL at random byte offsets; recovery must always
    equal a reference that stopped after the same whole-record prefix."""
    batches = _mutation_batches()
    origin = tmp_path / "origin"
    db, _ = open_durable(origin, _config())
    db.add_set("s", SET_IDS)
    db.checkpoint()  # the set travels in the snapshot, not the log
    _apply(db, batches)
    db.wal.flush()
    segment = db.wal.segment_path
    db.wal.close()
    full_size = segment.stat().st_size

    rng = np.random.default_rng(1234)
    offsets = sorted(set(int(v) for v in rng.integers(0, full_size + 1, 8))
                     | {0, full_size})
    for trial, offset in enumerate(offsets):
        crash = tmp_path / f"crash{trial}"
        shutil.copytree(origin, crash)
        with open(crash / WAL_DIR / segment.name, "r+b") as fh:
            fh.truncate(offset)

        recovered, report = recover_engine(crash / "")
        # Torn final records are repaired silently, never raised.
        replayed = report.records_replayed

        reference_dir = tmp_path / f"ref{trial}"
        reference, _ = open_durable(reference_dir, _config())
        reference.add_set("s", SET_IDS)
        reference.checkpoint()
        _apply(reference, batches[:replayed])

        assert recovered.current_epoch().epoch \
            == reference.current_epoch().epoch, f"offset {offset}"
        assert np.array_equal(recovered.occupied, reference.occupied), \
            f"offset {offset}"
        assert np.array_equal(_draw(recovered), _draw(reference)), \
            f"offset {offset}"
        recovered.wal.close()
        reference.wal.close()


def test_torn_final_record_skipped_without_error(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    db.insert_ids(np.arange(2100, 2140, dtype=np.uint64))
    expected = _draw(db)
    expected_epoch = db.current_epoch().epoch
    tail = db.wal.segment_path
    db.wal.close()
    from repro.durability.wal import encode_record
    with open(tail, "ab") as fh:  # a kill -9 mid-append signature
        fh.write(encode_record(
            "insert", expected_epoch + 1, "",
            np.arange(3000, 3040, dtype=np.uint64))[:-7])

    db2, report = recover_engine(tmp_path / "e")
    assert report.torn_tail
    assert db2.current_epoch().epoch == expected_epoch
    assert np.array_equal(_draw(db2), expected)
    db2.wal.close()


def test_misaligned_log_raises_instead_of_serving_wrong_state(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    # Forge a record whose claimed epoch cannot match what replay mints.
    db.wal.append("insert", np.array([2500], dtype=np.uint64), epoch=999)
    db.wal.close()
    with pytest.raises(CorruptWalError, match="diverged"):
        recover_engine(tmp_path / "e")


def test_recover_refuses_non_durable_engine(tmp_path):
    db = BloomDB(_config(plan="compiled", mutation="delta"))
    db.save(tmp_path / "plain")
    with pytest.raises(DurabilityError, match="durability"):
        recover_engine(tmp_path / "plain")


def test_verify_flag_detects_snapshot_corruption(tmp_path):
    from repro.core.mmapio import CorruptBlobError

    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    db.checkpoint()
    db.wal.close()
    import json

    from repro.core.mmapio import MAGIC

    plan_path = tmp_path / "e" / "plan.bst"
    with open(plan_path, "rb") as fh:
        fh.seek(len(MAGIC))
        header_len = int.from_bytes(fh.read(8), "little")
        header = json.loads(fh.read(header_len))
    target = next(e for e in header["arrays"] if e["nbytes"] > 0)
    with open(plan_path, "r+b") as fh:
        fh.seek(target["offset"])
        byte = fh.read(1)
        fh.seek(target["offset"])
        fh.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(CorruptBlobError):
        recover_engine(tmp_path / "e", verify=True)


def test_inspect_wal_is_read_only(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    db.insert_ids(np.arange(2100, 2130, dtype=np.uint64))
    db.wal.close()
    before = sorted((tmp_path / "e" / WAL_DIR).iterdir())

    info = inspect_wal(tmp_path / "e")
    assert info["records_by_op"]["insert"] >= 2  # add_set registration too
    assert info["records_by_op"]["add_set"] == 1
    assert info["snapshot_epoch"] == 1
    assert not info["clean_shutdown"]
    assert sorted((tmp_path / "e" / WAL_DIR).iterdir()) == before


# -- durability contract on the engine API --------------------------------------


def test_compact_redirects_to_checkpoint_on_durable_engine(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    db.insert_ids(np.arange(2100, 2140, dtype=np.uint64))
    expected = _draw(db)
    plan = db.compact()  # must redirect to checkpoint(), not drop the WAL
    assert plan is db.compiled_tree() or plan is not None
    assert np.array_equal(_draw(db), expected)
    db.wal.close()
    # The redirect checkpointed: replay starts from the folded snapshot.
    _, report = recover_engine(tmp_path / "e")
    assert report.records_replayed == 0
    assert report.snapshot_epoch > 1


def test_compact_to_path_and_save_refused_on_durable_engine(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    with pytest.raises(DurabilityError, match="checkpoint"):
        db.compact(path=tmp_path / "elsewhere")
    with pytest.raises(DurabilityError, match="checkpoint"):
        db.save(tmp_path / "elsewhere")
    db.wal.close()


def test_clean_shutdown_marker_round_trip(tmp_path):
    db, _ = open_durable(tmp_path / "e", _config())
    db.add_set("s", SET_IDS)
    db.checkpoint()
    db.wal.mark_clean()
    db.wal.close()
    _, report = recover_engine(tmp_path / "e")
    assert report.clean_shutdown
    assert not report.torn_tail


# -- ring recovery --------------------------------------------------------------


def _make_ring(path, shards=2):
    template = BloomDB(_config(plan="compiled", mutation="delta"))
    template.add_set("s", SET_IDS)
    template.add_set("t", SET_IDS[::3])
    init_ring(path, shards, template=template)
    return recover_ring(path)


def test_ring_init_and_recover(tmp_path):
    pool, reports = _make_ring(tmp_path / "ring")
    assert len(reports) == 2
    assert pool.durable
    assert {e.epoch for e in pool.ring_epochs()} == {1}
    names = set()
    for engine in pool.engines:
        names.update(engine.names())
        engine.wal.close()
    assert names == {"s", "t"}


def test_ring_reconciles_crash_lagged_shards(tmp_path):
    pool, _ = _make_ring(tmp_path / "ring")
    ids = np.arange(2100, 2150, dtype=np.uint64)
    # A crash mid-broadcast: shard 0 journalled the write, shard 1 never
    # saw it.
    pool.engines[0].insert_ids(ids)
    for engine in pool.engines:
        engine.wal.close()

    pool2, reports = recover_ring(tmp_path / "ring")
    epochs = [e.epoch for e in pool2.ring_epochs()]
    assert len(set(epochs)) == 1
    reference = pool2.engines[0].occupied
    for engine in pool2.engines:
        assert np.array_equal(engine.occupied, reference)
        engine.wal.close()


def test_ring_service_checkpoint_and_graceful_close(tmp_path):
    pool, _ = _make_ring(tmp_path / "ring")
    service = BloomService(pool, ServiceConfig(shards=pool.num_shards))
    with service:
        service.insert_ids(np.arange(2100, 2150, dtype=np.uint64))
        before = service.sample("s", r=12, seed=5)
        summaries = service.checkpoint()  # barrier path (workers running)
        assert len({s["epoch"] for s in summaries}) == 1
        after = service.sample("s", r=12, seed=5)
        assert np.array_equal(before.values, after.values)
    service.close()

    pool2, reports = recover_ring(tmp_path / "ring")
    assert all(r.clean_shutdown for r in reports)
    assert all(r.records_replayed == 0 for r in reports)
    service2 = BloomService(pool2, ServiceConfig(shards=pool2.num_shards))
    with service2:
        again = service2.sample("s", r=12, seed=5)
    assert np.array_equal(before.values, again.values)
    service2.close()


def test_checkpoint_refused_on_volatile_service():
    service = BloomService.plan(namespace_size=NAMESPACE, shards=2,
                                accuracy=0.9, set_size=200, seed=11)
    service.add_set("s", SET_IDS)
    assert not service.durable
    with pytest.raises(DurabilityError, match="durable"):
        service.checkpoint()
