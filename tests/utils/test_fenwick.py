"""Tests for the Fenwick tree powering the clustered generator."""

import numpy as np
import pytest

from repro.utils.fenwick import FenwickTree


class TestConstruction:
    def test_uniform_totals(self):
        tree = FenwickTree.uniform(10)
        assert tree.total == pytest.approx(10.0)
        assert tree.alive_count == 10

    def test_from_weights(self):
        weights = np.array([0.0, 2.0, 0.0, 3.0, 1.0])
        tree = FenwickTree.from_weights(weights)
        assert tree.total == pytest.approx(6.0)
        assert tree.alive_count == 3
        assert not tree.is_alive(0)
        assert tree.is_alive(1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree.from_weights(np.array([1.0, -0.5]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree.from_weights(np.ones((2, 2)))


class TestPrefixSums:
    def test_matches_cumsum(self):
        rng = np.random.default_rng(0)
        weights = rng.random(97)
        tree = FenwickTree.from_weights(weights)
        cumsum = np.cumsum(weights)
        for i in range(97):
            assert tree.prefix_sum(i) == pytest.approx(cumsum[i])

    def test_after_updates(self):
        tree = FenwickTree.uniform(16)
        tree.set_weight(3, 5.0)
        tree.add_weight(10, 2.5)
        reference = np.ones(16)
        reference[3] = 5.0
        reference[10] = 3.5
        for i in range(16):
            assert tree.prefix_sum(i) == pytest.approx(reference[: i + 1].sum())


class TestUpdates:
    def test_set_weight_kills_and_revives(self):
        tree = FenwickTree.uniform(8)
        tree.set_weight(2, 0.0)
        assert tree.alive_count == 7
        assert not tree.is_alive(2)
        tree.set_weight(2, 0.5)
        assert tree.alive_count == 8

    def test_weight_readback(self):
        tree = FenwickTree.uniform(8)
        tree.set_weight(5, 3.25)
        assert tree.weight(5) == pytest.approx(3.25)

    def test_out_of_range(self):
        tree = FenwickTree.uniform(8)
        with pytest.raises(IndexError):
            tree.set_weight(8, 1.0)
        with pytest.raises(ValueError):
            tree.set_weight(0, -1.0)

    def test_scale_all(self):
        tree = FenwickTree.uniform(8)
        tree.scale_all(0.5)
        assert tree.total == pytest.approx(4.0)
        assert tree.alive_count == 8
        assert tree.weight(3) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            tree.scale_all(0.0)


class TestSampling:
    def test_sample_respects_intervals(self):
        tree = FenwickTree.from_weights(np.array([1.0, 2.0, 3.0]))
        assert tree.sample(0.5) == 0
        assert tree.sample(1.5) == 1
        assert tree.sample(2.999) == 1
        assert tree.sample(3.0) == 2
        assert tree.sample(5.999) == 2

    def test_sample_skips_dead(self):
        tree = FenwickTree.from_weights(np.array([0.0, 1.0, 0.0, 1.0]))
        assert tree.sample(0.5) == 1
        assert tree.sample(1.5) == 3

    def test_sample_out_of_range(self):
        tree = FenwickTree.uniform(4)
        with pytest.raises(ValueError):
            tree.sample(4.0)

    def test_sampling_distribution(self):
        rng = np.random.default_rng(7)
        weights = np.array([1.0, 4.0, 5.0])
        tree = FenwickTree.from_weights(weights)
        draws = np.array([
            tree.sample(rng.random() * tree.total) for _ in range(20_000)
        ])
        freqs = np.bincount(draws, minlength=3) / draws.size
        np.testing.assert_allclose(freqs, weights / weights.sum(), atol=0.02)


class TestAliveOrderStatistics:
    def test_rank_select_roundtrip(self):
        weights = np.array([0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        tree = FenwickTree.from_weights(weights)
        alive = [1, 2, 4, 6]
        for rank, idx in enumerate(alive):
            assert tree.alive_select(rank) == idx
            assert tree.alive_rank(idx) == rank

    def test_predecessor_successor(self):
        weights = np.array([0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        tree = FenwickTree.from_weights(weights)
        assert tree.alive_predecessor(4) == 2
        assert tree.alive_successor(4) == 6
        assert tree.alive_predecessor(1) is None
        assert tree.alive_successor(6) is None
        # Neighbours of a *dead* index work too.
        assert tree.alive_predecessor(3) == 2
        assert tree.alive_successor(3) == 4

    def test_select_out_of_range(self):
        tree = FenwickTree.uniform(4)
        with pytest.raises(IndexError):
            tree.alive_select(4)

    def test_updates_tracked(self):
        tree = FenwickTree.uniform(5)
        tree.set_weight(2, 0.0)
        assert tree.alive_successor(1) == 3
        tree.set_weight(2, 1.0)
        assert tree.alive_successor(1) == 2
