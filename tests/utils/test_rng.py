"""Tests for RNG plumbing."""

import numpy as np

from repro.utils.rng import ensure_rng


def test_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_seed_reproducible():
    a = ensure_rng(42)
    b = ensure_rng(42)
    assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)


def test_generator_passthrough():
    gen = np.random.default_rng(7)
    assert ensure_rng(gen) is gen


def test_different_seeds_differ():
    draws_a = ensure_rng(1).integers(0, 1 << 30, size=4)
    draws_b = ensure_rng(2).integers(0, 1 << 30, size=4)
    assert not np.array_equal(draws_a, draws_b)
