"""Tests for the Miller-Rabin primality helpers."""

import pytest

from repro.utils.primes import is_prime, mod_inverse, next_prime

FIRST_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                59, 61, 67, 71, 73, 79, 83, 89, 97]

# Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341]

LARGE_PRIMES = [
    1_000_003,
    2_147_483_647,        # Mersenne prime 2^31 - 1
    1_000_000_007,
    2_305_843_009_213_693_951,  # Mersenne prime 2^61 - 1
]


class TestIsPrime:
    def test_small_primes(self):
        for p in FIRST_PRIMES:
            assert is_prime(p), p

    def test_small_composites(self):
        composites = set(range(100)) - set(FIRST_PRIMES)
        for c in composites:
            assert not is_prime(c), c

    def test_carmichael_numbers_rejected(self):
        for c in CARMICHAEL:
            assert not is_prime(c), c

    def test_large_primes(self):
        for p in LARGE_PRIMES:
            assert is_prime(p), p

    def test_large_composites(self):
        for p in LARGE_PRIMES:
            assert not is_prime(p * 3)
        assert not is_prime(2_147_483_647 * 1_000_003)

    def test_negative_and_edge(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_square_of_prime(self):
        assert not is_prime(1_000_003 ** 2)

    def test_deterministic_range_guard(self):
        with pytest.raises(ValueError):
            is_prime(10 ** 25)


class TestNextPrime:
    def test_exact_prime_returned(self):
        assert next_prime(7) == 7
        assert next_prime(1_000_003) == 1_000_003

    def test_steps_to_next(self):
        assert next_prime(8) == 11
        assert next_prime(90) == 97
        assert next_prime(1_000_000) == 1_000_003

    def test_tiny_inputs(self):
        assert next_prime(0) == 2
        assert next_prime(1) == 2
        assert next_prime(2) == 2
        assert next_prime(3) == 3

    def test_million_scale(self):
        p = next_prime(10_000_000)
        assert p >= 10_000_000
        assert is_prime(p)


class TestModInverse:
    @pytest.mark.parametrize("p", [7, 101, 1_000_003])
    def test_inverse_property(self, p):
        for a in [1, 2, 3, p - 1, 12345 % p or 1]:
            inv = mod_inverse(a, p)
            assert (a * inv) % p == 1

    def test_zero_not_invertible(self):
        with pytest.raises(ValueError):
            mod_inverse(0, 7)
        with pytest.raises(ValueError):
            mod_inverse(14, 7)  # reduces to 0 mod 7

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)

    def test_result_in_range(self):
        p = 1_000_003
        inv = mod_inverse(999_999, p)
        assert 0 < inv < p
