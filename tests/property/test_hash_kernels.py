"""Property-based tests (hypothesis) for the hash-family kernels.

Three families of properties:

* batch/scalar consistency — for every family, ``positions_many`` under
  the vectorized kernels equals both the legacy scalar kernels and the
  one-element ``positions`` path, element for element;
* invert -> hash round trips — ``SimpleHashFamily.invert`` returns
  exactly the preimage of a bit position (soundness and completeness);
* overflow boundaries — the large-prime regimes of the Simple family
  (``p`` at and beyond ``2^32`` / ``2^63``, where naive ``uint64``
  products overflow) agree with exact Python-int arithmetic.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.hashing import SimpleHashFamily, create_family

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

M_BITS = 1_024
NAMESPACE = 600

families = st.sampled_from(["simple", "murmur3", "md5"])
seeds = st.integers(0, 2**16)


def _family(name: str, seed: int, namespace: int = NAMESPACE):
    return create_family(name, 3, M_BITS, namespace_size=namespace,
                         seed=seed)


class TestBatchScalarConsistency:
    @COMMON
    @given(name=families, seed=seeds,
           xs=st.lists(st.integers(0, NAMESPACE - 1), min_size=1,
                       max_size=40))
    def test_vectorized_equals_scalar_kernels(self, name, seed, xs):
        family = _family(name, seed)
        batch = np.asarray(xs, dtype=np.uint64)
        vectorized = family.positions_many(batch)
        with kernels.scalar_kernels():
            scalar = family.positions_many(batch)
        assert np.array_equal(vectorized, scalar)

    @COMMON
    @given(name=families, seed=seeds, x=st.integers(0, NAMESPACE - 1))
    def test_single_equals_batch_row(self, name, seed, x):
        family = _family(name, seed)
        batch = family.positions_many(
            np.asarray([x, x, x], dtype=np.uint64))
        single = family.positions(x)
        assert np.array_equal(batch[0], single)
        assert np.array_equal(batch[1], single)
        assert (single < M_BITS).all()


class TestSimpleInvertRoundTrip:
    @COMMON
    @given(seed=seeds, func_index=st.integers(0, 2),
           x=st.integers(0, NAMESPACE - 1))
    def test_hash_then_invert_contains_x(self, seed, func_index, x):
        family = SimpleHashFamily(3, M_BITS, NAMESPACE, seed=seed)
        position = int(family.positions(x)[func_index])
        preimage = family.invert(func_index, position, NAMESPACE)
        assert x in preimage.tolist()

    @COMMON
    @given(seed=seeds, func_index=st.integers(0, 2),
           position=st.integers(0, M_BITS - 1))
    def test_invert_is_exact_preimage(self, seed, func_index, position):
        family = SimpleHashFamily(3, M_BITS, NAMESPACE, seed=seed)
        preimage = set(
            family.invert(func_index, position, NAMESPACE).tolist())
        all_xs = np.arange(NAMESPACE, dtype=np.uint64)
        hashed = family.positions_many(all_xs)[:, func_index]
        brute = set(np.flatnonzero(hashed == position).tolist())
        assert preimage == brute  # sound AND complete


class TestOverflowBoundaries:
    """The uint64-overflow regimes of the Simple family's prime modulus."""

    @COMMON
    @given(offset=st.integers(-3, 3), seed=st.integers(0, 2**8),
           xs=st.lists(st.integers(0, 2**40), min_size=1, max_size=12))
    def test_near_2_32_boundary(self, offset, seed, xs):
        namespace = (1 << 32) + offset * 7
        family = SimpleHashFamily(2, M_BITS, namespace, seed=seed)
        batch = np.asarray(xs, dtype=np.uint64)
        got = family.positions_many(batch)
        expected = kernels.simple_positions_scalar(
            batch, family._a, family._b, family.p, family.m)
        assert np.array_equal(got, expected)

    @COMMON
    @given(seed=st.integers(0, 2**8),
           xs=st.lists(st.integers(0, 2**62), min_size=1, max_size=8))
    def test_beyond_2_62_namespace(self, seed, xs):
        family = SimpleHashFamily(2, M_BITS, (1 << 62) + 11, seed=seed)
        assert family.p >= (1 << 62)
        batch = np.asarray(xs, dtype=np.uint64)
        got = family.positions_many(batch)
        expected = np.empty_like(got)
        for j, x in enumerate(batch.tolist()):
            for i in range(family.k):
                expected[j, i] = ((int(family._a[i]) * x
                                   + int(family._b[i]))
                                  % family.p) % family.m
        assert np.array_equal(got, expected)

    def test_mulmod_maximal_operands(self):
        """Largest mulmod regime operands: no silent uint64 wraparound."""
        p = (1 << 63) - 25  # 2^63 - 25 is prime; the regime's ceiling
        xs = np.array([p - 1, p - 2, 1, 0], dtype=np.uint64)
        got = kernels._mulmod_shift_add(p - 1, xs, p)
        expected = np.array([((p - 1) * int(x)) % p for x in xs],
                            dtype=np.uint64)
        assert np.array_equal(got, expected)
