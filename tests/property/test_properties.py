"""Property-based tests (hypothesis) for the core invariants.

These encode the DESIGN.md invariant list: Bloom filters never produce
false negatives, union is exact, the BloomSampleTree is laminar, weak
inversion is a true preimage, exhaustive reconstruction equals the
dictionary attack, and the Fenwick tree matches a list model.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dictionary_attack import DictionaryAttack
from repro.core.bitvector import BitVector
from repro.core.bloom import BloomFilter
from repro.core.hashing import SimpleHashFamily, create_family
from repro.core.reconstruct import BSTReconstructor
from repro.core.sampling import BSTSampler
from repro.core.tree import BloomSampleTree
from repro.utils.fenwick import FenwickTree

NAMESPACE = 512
M_BITS = 4_096

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _family(seed: int, name: str = "murmur3"):
    return create_family(name, 3, M_BITS, namespace_size=NAMESPACE,
                         seed=seed)


item_sets = st.sets(st.integers(0, NAMESPACE - 1), min_size=0, max_size=64)


class TestBloomProperties:
    @COMMON
    @given(items=item_sets, seed=st.integers(0, 5))
    def test_no_false_negatives(self, items, seed):
        family = _family(seed)
        bloom = BloomFilter.from_items(
            np.array(sorted(items), dtype=np.uint64), family)
        for x in items:
            assert x in bloom

    @COMMON
    @given(a=item_sets, b=item_sets, seed=st.integers(0, 5))
    def test_union_is_exact(self, a, b, seed):
        family = _family(seed)
        fa = BloomFilter.from_items(np.array(sorted(a), dtype=np.uint64),
                                    family)
        fb = BloomFilter.from_items(np.array(sorted(b), dtype=np.uint64),
                                    family)
        direct = BloomFilter.from_items(
            np.array(sorted(a | b), dtype=np.uint64), family)
        assert fa.union(fb) == direct

    @COMMON
    @given(a=item_sets, b=item_sets, seed=st.integers(0, 5))
    def test_intersection_contains_common_bits(self, a, b, seed):
        family = _family(seed)
        fa = BloomFilter.from_items(np.array(sorted(a), dtype=np.uint64),
                                    family)
        fb = BloomFilter.from_items(np.array(sorted(b), dtype=np.uint64),
                                    family)
        inter = fa.intersection(fb)
        for x in a & b:
            assert x in inter  # common elements survive the AND

    @COMMON
    @given(items=item_sets, seed=st.integers(0, 5))
    def test_batch_matches_scalar_membership(self, items, seed):
        family = _family(seed)
        bloom = BloomFilter.from_items(
            np.array(sorted(items), dtype=np.uint64), family)
        probes = np.arange(0, NAMESPACE, 7, dtype=np.uint64)
        batch = bloom.contains_many(probes)
        for x, hit in zip(probes.tolist(), batch.tolist()):
            assert (int(x) in bloom) == hit


class TestBitVectorProperties:
    @COMMON
    @given(positions=st.lists(st.integers(0, 199), max_size=100),
           other=st.lists(st.integers(0, 199), max_size=100))
    def test_matches_int_model(self, positions, other):
        bv_a, bv_b = BitVector(200), BitVector(200)
        int_a = int_b = 0
        for p in positions:
            bv_a.set_bit(p)
            int_a |= 1 << p
        for p in other:
            bv_b.set_bit(p)
            int_b |= 1 << p
        assert bv_a.count_ones() == bin(int_a).count("1")
        assert (bv_a & bv_b).count_ones() == bin(int_a & int_b).count("1")
        assert (bv_a | bv_b).count_ones() == bin(int_a | int_b).count("1")
        assert bv_a.intersection_count(bv_b) == bin(int_a & int_b).count("1")
        np.testing.assert_array_equal(
            bv_a.set_positions(),
            np.array([i for i in range(200) if int_a >> i & 1],
                     dtype=np.int64))


class TestTreeProperties:
    @COMMON
    @given(
        namespace=st.integers(16, 600),
        depth=st.integers(0, 4),
        seed=st.integers(0, 3),
    )
    def test_laminar_structure(self, namespace, depth, seed):
        if (1 << depth) > namespace:
            depth = namespace.bit_length() - 1
        family = create_family("murmur3", 2, 1024, seed=seed)
        tree = BloomSampleTree.build(namespace, depth, family)
        for node in tree.iter_nodes():
            if tree.is_leaf(node):
                continue
            assert node.left.lo == node.lo
            assert node.right.hi == node.hi
            assert node.left.hi == node.right.lo
            assert node.bloom == node.left.bloom.union(node.right.bloom)

    @COMMON
    @given(items=st.sets(st.integers(0, NAMESPACE - 1), min_size=1,
                         max_size=48),
           seed=st.integers(0, 3))
    def test_sample_is_always_query_positive(self, items, seed, small_tree):
        family = small_tree.family
        # Project items into the fixture tree's namespace.
        values = np.array(sorted(i % small_tree.namespace_size
                                 for i in items), dtype=np.uint64)
        query = BloomFilter.from_items(np.unique(values), family)
        sampler = BSTSampler(small_tree, rng=seed)
        result = sampler.sample(query)
        assert result.value is not None
        assert result.value in query

    @COMMON
    @given(items=st.sets(st.integers(0, NAMESPACE - 1), max_size=48),
           seed=st.integers(0, 3))
    def test_exhaustive_reconstruction_equals_dictionary_attack(
            self, items, seed):
        family = _family(seed)
        tree = BloomSampleTree.build(NAMESPACE, 3, family)
        query = BloomFilter.from_items(
            np.array(sorted(items), dtype=np.uint64), family)
        bst = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        da, __ = DictionaryAttack(NAMESPACE).reconstruct(query)
        np.testing.assert_array_equal(bst.elements, da)
        for x in items:
            assert x in bst.elements


class TestInversionProperties:
    @COMMON
    @given(seed=st.integers(0, 10), k=st.integers(1, 4),
           position=st.integers(0, 255))
    def test_inversion_is_complete_preimage(self, seed, k, position):
        family = SimpleHashFamily(k, 256, NAMESPACE, seed=seed)
        xs = np.arange(NAMESPACE, dtype=np.uint64)
        positions = family.positions_many(xs)
        for i in range(k):
            expected = np.flatnonzero(positions[:, i] == position)
            got = family.invert(i, position, NAMESPACE)
            np.testing.assert_array_equal(got,
                                          expected.astype(np.uint64))


class TestFenwickProperties:
    @COMMON
    @given(
        weights=st.lists(
            st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=64),
        updates=st.lists(
            st.tuples(st.integers(0, 63), st.floats(0.0, 10.0)),
            max_size=20),
    )
    def test_matches_list_model(self, weights, updates):
        tree = FenwickTree.from_weights(np.array(weights))
        model = list(weights)
        for index, value in updates:
            index %= len(model)
            tree.set_weight(index, value)
            model[index] = value
        for i in range(len(model)):
            assert tree.prefix_sum(i) == pytest.approx(sum(model[: i + 1]))
        assert tree.alive_count == sum(1 for w in model if w > 0)
        alive = [i for i, w in enumerate(model) if w > 0]
        for rank, idx in enumerate(alive):
            assert tree.alive_select(rank) == idx
