"""Property-based tests for the deletion-capable structures.

Models: the counting filter against a Python multiset; the dynamic tree
against a from-scratch rebuild after an arbitrary insert/remove history.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.counting import CountingBloomFilter, NotStoredError
from repro.core.dynamic import DynamicBloomSampleTree
from repro.core.hashing import create_family

NAMESPACE = 256
M_BITS = 2_048

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _family(seed: int):
    return create_family("murmur3", 3, M_BITS, namespace_size=NAMESPACE,
                         seed=seed)


# An operation history: (element, is_insert).  Removals of absent
# elements are skipped by the executor, so any history is valid.
histories = st.lists(
    st.tuples(st.integers(0, NAMESPACE - 1), st.booleans()),
    max_size=60,
)


class TestCountingFilterModel:
    @COMMON
    @given(history=histories, seed=st.integers(0, 4))
    def test_matches_multiset_model(self, history, seed):
        family = _family(seed)
        cbf = CountingBloomFilter(family)
        model: dict[int, int] = {}
        for element, is_insert in history:
            if is_insert:
                cbf.add(element)
                model[element] = model.get(element, 0) + 1
            elif model.get(element, 0) > 0:
                cbf.remove(element)
                model[element] -= 1
        survivors = np.array(sorted(x for x, c in model.items() if c > 0),
                             dtype=np.uint64)
        # The live view equals a fresh plain filter of the survivors.
        assert cbf.bloom == BloomFilter.from_items(survivors, family)
        for x in survivors.tolist():
            assert int(x) in cbf

    @COMMON
    @given(items=st.sets(st.integers(0, NAMESPACE - 1), max_size=40),
           seed=st.integers(0, 4))
    def test_remove_all_restores_empty(self, items, seed):
        family = _family(seed)
        cbf = CountingBloomFilter(family)
        values = np.array(sorted(items), dtype=np.uint64)
        cbf.add_many(values)
        cbf.remove_many(values)
        assert cbf.count_nonzero() == 0

    @COMMON
    @given(seed=st.integers(0, 4), x=st.integers(0, NAMESPACE - 1))
    def test_double_remove_raises(self, seed, x):
        cbf = CountingBloomFilter(_family(seed))
        cbf.add(x)
        cbf.remove(x)
        with pytest.raises(NotStoredError):
            cbf.remove(x)


class TestDynamicTreeModel:
    @COMMON
    @given(history=histories, seed=st.integers(0, 3))
    def test_matches_rebuild(self, history, seed):
        family = _family(seed)
        tree = DynamicBloomSampleTree(NAMESPACE, 4, family)
        occupied: set[int] = set()
        for element, is_insert in history:
            if is_insert:
                tree.insert(element)
                occupied.add(element)
            elif element in occupied:
                tree.remove(element)
                occupied.discard(element)
        rebuilt = DynamicBloomSampleTree.build(
            np.array(sorted(occupied), dtype=np.uint64), NAMESPACE, 4,
            family)
        np.testing.assert_array_equal(tree.occupied, rebuilt.occupied)
        assert tree.num_nodes == rebuilt.num_nodes
        ours = {(n.level, n.index): n.bloom for n in tree.iter_nodes()}
        reference = {(n.level, n.index): n.bloom
                     for n in rebuilt.iter_nodes()}
        assert ours.keys() == reference.keys()
        for key in ours:
            assert ours[key] == reference[key]
