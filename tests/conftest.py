"""Shared fixtures: a small namespace + tree every suite can afford.

The fixtures deliberately use a *large* filter relative to the namespace
(m chosen for accuracy ~0.99) so that estimator noise does not make
behavioural assertions flaky; noise-regime behaviour is tested explicitly
where it matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BloomFilter,
    BloomSampleTree,
    PrunedBloomSampleTree,
    create_family,
)

SMALL_M = 16_384
SMALL_NAMESPACE = 4_096
SMALL_DEPTH = 5
SMALL_K = 3


@pytest.fixture(scope="session")
def small_family():
    """Murmur3 family over the small namespace."""
    return create_family("murmur3", SMALL_K, SMALL_M,
                         namespace_size=SMALL_NAMESPACE, seed=42)


@pytest.fixture(scope="session")
def simple_family():
    """Weakly invertible family over the small namespace."""
    return create_family("simple", SMALL_K, SMALL_M,
                         namespace_size=SMALL_NAMESPACE, seed=42)


@pytest.fixture(scope="session")
def small_tree(small_family):
    """Complete BloomSampleTree over the small namespace."""
    return BloomSampleTree.build(SMALL_NAMESPACE, SMALL_DEPTH, small_family)


@pytest.fixture(scope="session")
def simple_tree(simple_family):
    """Complete tree with the invertible family."""
    return BloomSampleTree.build(SMALL_NAMESPACE, SMALL_DEPTH, simple_family)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def secret_set(rng):
    """A 64-element uniform secret set in the small namespace."""
    values = rng.choice(SMALL_NAMESPACE, size=64, replace=False)
    return np.sort(values).astype(np.uint64)


@pytest.fixture()
def query_filter(secret_set, small_family):
    """Query Bloom filter storing the secret set (murmur3 family)."""
    return BloomFilter.from_items(secret_set, small_family)


@pytest.fixture()
def simple_query_filter(secret_set, simple_family):
    """Query Bloom filter storing the secret set (simple family)."""
    return BloomFilter.from_items(secret_set, simple_family)


@pytest.fixture()
def sparse_pruned_tree(small_family, rng):
    """Pruned tree over 256 occupied ids in the small namespace."""
    occupied = np.sort(rng.choice(SMALL_NAMESPACE, size=256, replace=False))
    tree = PrunedBloomSampleTree.build(
        occupied.astype(np.uint64), SMALL_NAMESPACE, SMALL_DEPTH, small_family
    )
    return tree, occupied.astype(np.uint64)
