"""Documentation health: doctests run, public API is importable/documented."""

import doctest
import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
    "repro.service",
    "repro.durability",
    "repro.obs",
    "repro.utils",
]


def test_package_doctest():
    """The README-style doctest in the package docstring must pass."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip()


def test_all_submodules_have_docstrings():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ and module.__doc__.strip()):
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_api_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_public_classes_and_functions_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"undocumented exports: {undocumented}"


def _inherits_documented(cls, attr_name) -> bool:
    """Whether some base class documents an attribute of the same name."""
    for base in cls.__mro__[1:]:
        base_attr = base.__dict__.get(attr_name)
        if base_attr is None:
            continue
        target = base_attr.fget if isinstance(base_attr, property) else base_attr
        if (getattr(target, "__doc__", None) or "").strip():
            return True
    return False


def test_public_methods_documented():
    """Every public method on exported classes carries a docstring.

    Overrides of a documented base-class method (e.g. the HashFamily
    implementations) inherit their contract from the base.
    """
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not inspect.isclass(obj):
            continue
        for attr_name, attr in vars(obj).items():
            if attr_name.startswith("_"):
                continue
            if callable(attr) or isinstance(attr, property):
                target = attr.fget if isinstance(attr, property) else attr
                documented = bool((getattr(target, "__doc__", None)
                                   or "").strip())
                if target is not None and not documented and \
                        not _inherits_documented(obj, attr_name):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"undocumented methods: {undocumented}"
