"""The metric model: concurrency, the export algebra, and labels.

The cross-process aggregation story rests on three properties tested
here: recording is exact under concurrent writers (totals never lose an
increment, even with snapshots interleaved), ``diff_exports`` /
``merge_exports`` compose back to the original registry state (what the
worker-delta pipeline relies on), and ``relabel_export`` folds label
sets without disturbing values (how per-worker series are minted).
"""

import threading

import pytest

from repro.obs.metrics import (
    BATCH_BUCKETS,
    Metrics,
    diff_exports,
    empty_export,
    export_snapshot,
    merge_exports,
    relabel_export,
    stage_summaries,
)

THREADS = 8
PER_THREAD = 2_000


class TestConcurrentWriters:
    def test_totals_exact_with_snapshots_interleaved(self):
        metrics = Metrics()
        start = threading.Barrier(THREADS + 1)
        done = threading.Event()

        def hammer(worker: int) -> None:
            start.wait()
            for i in range(PER_THREAD):
                metrics.inc("ops")
                metrics.inc("ops", labels={"worker": str(worker)})
                metrics.observe("latency", i * 1e-6)
                metrics.set_gauge("depth", i)

        def snapshotter() -> None:
            start.wait()
            while not done.is_set():
                snap = metrics.snapshot()
                assert snap["counters"].get("ops", 0) >= 0
                metrics.export()

        workers = [threading.Thread(target=hammer, args=(w,))
                   for w in range(THREADS)]
        reader = threading.Thread(target=snapshotter)
        for t in workers + [reader]:
            t.start()
        for t in workers:
            t.join()
        done.set()
        reader.join()

        assert metrics.counter("ops") == THREADS * PER_THREAD
        for w in range(THREADS):
            assert metrics.counter(
                "ops", labels={"worker": str(w)}) == PER_THREAD
        export = metrics.export()
        hist = export["histograms"]["latency"]["[]"]
        assert hist["count"] == THREADS * PER_THREAD
        assert sum(hist["counts"]) == THREADS * PER_THREAD

    def test_concurrent_diff_merge_pipeline_is_exact(self):
        """Worker-side delta shipping under load reconstructs the totals."""
        metrics = Metrics()
        merged = empty_export()
        merge_lock = threading.Lock()
        shipped = empty_export()
        stop = threading.Event()

        def shipper() -> None:
            nonlocal shipped
            while not stop.is_set():
                current = metrics.export()
                delta = diff_exports(current, shipped)
                with merge_lock:
                    merge_exports(merged, delta)
                shipped = current

        def writer() -> None:
            for _ in range(PER_THREAD):
                metrics.inc("served")
                metrics.observe("batch", 3.0, buckets=BATCH_BUCKETS)

        ship = threading.Thread(target=shipper)
        writers = [threading.Thread(target=writer) for _ in range(4)]
        ship.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        ship.join()
        # Final catch-up delta (the worker's last batch boundary).
        merge_exports(merged, diff_exports(metrics.export(), shipped))

        assert merged["counters"]["served"]["[]"] == 4 * PER_THREAD
        hist = merged["histograms"]["batch"]["[]"]
        assert hist["count"] == 4 * PER_THREAD
        assert hist["min"] == hist["max"] == 3.0


class TestExportAlgebra:
    def test_diff_then_merge_round_trips(self):
        a = Metrics()
        a.inc("x", 3)
        a.observe("h", 0.5)
        before = a.export()
        a.inc("x", 4)
        a.inc("y")
        a.observe("h", 2.5)
        a.set_gauge("g", 7.0)
        after = a.export()

        rebuilt = merge_exports(
            merge_exports(empty_export(), before),
            diff_exports(after, before))
        assert rebuilt == after

    def test_merge_is_monotone_over_restarts(self):
        """Re-merging a respawned worker's fresh export never regresses."""
        cumulative = empty_export()
        first = Metrics()
        first.inc("served", 10)
        first.observe("h", 1.0)
        merge_exports(cumulative, first.export())
        # kill -9: the replacement starts from zero and ships fresh deltas.
        respawned = Metrics()
        respawned.inc("served", 5)
        respawned.observe("h", 9.0)
        merge_exports(cumulative, respawned.export())

        assert cumulative["counters"]["served"]["[]"] == 15
        hist = cumulative["histograms"]["h"]["[]"]
        assert hist["count"] == 2
        assert hist["min"] == 1.0 and hist["max"] == 9.0

    def test_relabel_folds_labels_into_every_series(self):
        m = Metrics()
        m.inc("served", 2)
        m.inc("served", 5, labels={"op": "sample"})
        m.set_gauge("depth", 3)
        m.observe("h", 1.5)
        out = relabel_export(m.export(), {"worker": "03"})

        assert out["counters"]["served"]['[["worker","03"]]'] == 2
        assert out["counters"]["served"][
            '[["op","sample"],["worker","03"]]'] == 5
        assert out["gauges"]["depth"]['[["worker","03"]]'] == 3.0
        assert out["histograms"]["h"]['[["worker","03"]]']["count"] == 1

    def test_snapshot_renders_labeled_keys(self):
        m = Metrics()
        m.inc("served", 1)
        m.inc("served", 2, labels={"worker": "01"})
        snap = export_snapshot(m.export())
        assert snap["counters"]["served"] == 1
        assert snap["counters"]['served{worker="01"}'] == 2

    def test_stage_summaries_strip_prefix_and_suffix(self):
        m = Metrics()
        m.observe("stage.queue_s", 0.25)
        m.observe("other", 1.0)
        stages = stage_summaries(m.export())
        assert set(stages) == {"queue"}
        assert stages["queue"]["count"] == 1
        assert stages["queue"]["p50"] == pytest.approx(0.25)
