"""Prometheus text exposition: renderer, parser, and strict validator.

The renderer's output must satisfy our own strict validator (that is
what the ``metrics-scrape-smoke`` CI job asserts against a live scrape)
and parse back into exactly the values that went in — escaping, label
ordering, type lines, and cumulative histogram buckets all round-trip.
"""

import math

import pytest

from repro.obs.metrics import Metrics
from repro.obs.prometheus import (
    CONTENT_TYPE,
    metric_name,
    parse_exposition,
    render_prometheus,
    validate_exposition,
)


@pytest.fixture()
def registry() -> Metrics:
    m = Metrics()
    m.inc("requests_served", 7)
    m.inc("requests_served", 3, labels={"worker": "01"})
    m.set_gauge("queue_depth", 4)
    m.observe("stage.queue_s", 0.002)
    m.observe("stage.queue_s", 0.004)
    return m


class TestRenderer:
    def test_output_passes_the_strict_validator(self, registry):
        assert validate_exposition(render_prometheus(registry.export())) == []

    def test_counters_get_total_suffix_and_sorted_series(self, registry):
        text = render_prometheus(registry.export())
        lines = text.splitlines()
        assert "# TYPE requests_served_total counter" in lines
        unlabeled = lines.index("requests_served_total 7")
        labeled = lines.index('requests_served_total{worker="01"} 3')
        assert unlabeled < labeled  # "[]" sorts before any label key

    def test_help_and_type_precede_samples(self, registry):
        lines = render_prometheus(registry.export()).splitlines()
        for family in ("requests_served_total", "queue_depth"):
            help_i = next(i for i, l in enumerate(lines)
                          if l.startswith(f"# HELP {family} "))
            type_i = next(i for i, l in enumerate(lines)
                          if l.startswith(f"# TYPE {family} "))
            sample_i = next(i for i, l in enumerate(lines)
                            if l.startswith(family) and not l.startswith("#"))
            assert help_i < type_i < sample_i

    def test_families_sorted_by_name(self, registry):
        lines = render_prometheus(registry.export()).splitlines()
        families = [l.split()[2] for l in lines if l.startswith("# TYPE")]
        assert families == sorted(families)

    def test_label_values_escaped(self):
        m = Metrics()
        m.inc("ops", 1, labels={"name": 'we"ird\\set\nx'})
        text = render_prometheus(m.export())
        assert r'name="we\"ird\\set\nx"' in text
        assert validate_exposition(text) == []
        fams = parse_exposition(text)
        ((_, labels, value),) = fams["ops_total"]["samples"]
        assert labels == {"name": 'we"ird\\set\nx'}
        assert value == 1

    def test_histogram_buckets_cumulative_with_inf_terminator(self, registry):
        text = render_prometheus(registry.export())
        fams = parse_exposition(text)
        samples = fams["stage_queue_s"]["samples"]
        buckets = [(labels["le"], value) for name, labels, value in samples
                   if name == "stage_queue_s_bucket"]
        values = [v for _, v in buckets]
        assert values == sorted(values)  # cumulative
        assert buckets[-1][0] == "+Inf"
        count = next(v for n, _, v in samples if n == "stage_queue_s_count")
        assert buckets[-1][1] == count == 2
        total = next(v for n, _, v in samples if n == "stage_queue_s_sum")
        assert total == pytest.approx(0.006)

    def test_parse_round_trip_preserves_values(self, registry):
        fams = parse_exposition(render_prometheus(registry.export()))
        served = {tuple(sorted(labels.items())): value
                  for name, labels, value in
                  fams["requests_served_total"]["samples"]}
        assert served[()] == 7
        assert served[(("worker", "01"),)] == 3
        assert fams["queue_depth"]["type"] == "gauge"
        ((_, _, depth),) = fams["queue_depth"]["samples"]
        assert depth == 4

    def test_metric_name_sanitised(self):
        assert metric_name("stage.queue_s") == "stage_queue_s"
        assert metric_name("sample.latency_s") == "sample_latency_s"

    def test_content_type_pins_the_exposition_version(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


class TestValidator:
    def test_counter_without_total_suffix_flagged(self):
        text = ("# HELP ops Requests.\n# TYPE ops counter\nops 3\n")
        assert any("without _total" in e for e in validate_exposition(text))

    def test_negative_counter_flagged(self):
        text = ("# HELP ops_total Requests.\n# TYPE ops_total counter\n"
                "ops_total -1\n")
        assert any("negative" in e for e in validate_exposition(text))

    def test_sample_without_type_flagged(self):
        assert any("no TYPE" in e for e in validate_exposition("ops_total 3\n"))

    def test_duplicate_series_flagged(self):
        text = ("# HELP g G.\n# TYPE g gauge\ng 1\ng 2\n")
        assert any("duplicate series" in e for e in validate_exposition(text))

    def test_non_cumulative_histogram_flagged(self):
        text = ("# HELP h H.\n# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\nh_sum 4\nh_count 5\n')
        assert any("not cumulative" in e for e in validate_exposition(text))

    def test_missing_inf_bucket_flagged(self):
        text = ("# HELP h H.\n# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_sum 4\nh_count 5\n')
        assert any("+Inf" in e for e in validate_exposition(text))

    def test_bad_escape_flagged(self):
        text = ('# HELP g G.\n# TYPE g gauge\ng{x="a\\q"} 1\n')
        assert any("escape" in e for e in validate_exposition(text))

    def test_unknown_type_flagged(self):
        text = "# HELP g G.\n# TYPE g sausage\ng 1\n"
        assert any("unknown TYPE" in e for e in validate_exposition(text))

    def test_parse_exposition_raises_on_invalid(self):
        with pytest.raises(ValueError):
            parse_exposition("ops_total 3\n")
