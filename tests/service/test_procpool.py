"""Cross-process bit-identity: the tentpole correctness property.

The same seeded request batch must produce identical values *and*
operation counters through every tier: direct engine calls, the
in-thread scheduler, a 1-process pool and a 4-process pool.  Identity
holds because every stochastic request carries its own seed, every tier
dispatches through the same batched kernels over the same compiled
plan, and worker processes replay the leader's mutations through the
recovery core — so batch composition, shard count and process count are
all unobservable.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig, SampleSpec
from repro.service import (
    BatchPolicy,
    BloomService,
    ProcessService,
    ProcessShardPool,
    ServiceConfig,
)
from repro.service.client import encode_result
from repro.service.pool import ShardedEnginePool
from repro.service.procpool import (
    EPOCH_FILE,
    WORKER_WAL_DIR,
    read_epoch_state,
)

NAMESPACE = 8_000


@pytest.fixture(scope="module")
def compiled_config() -> EngineConfig:
    """Compiled plan + delta mutation: what process serving requires."""
    return EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                        set_size=150, seed=5, plan="compiled",
                        mutation="delta", tree="dynamic")


@pytest.fixture(scope="module")
def compiled_db(compiled_config, workload) -> BloomDB:
    db = BloomDB.from_config(compiled_config)
    for name, ids in workload:
        db.add_set(name, ids)
    return db


@pytest.fixture(scope="module")
def serving_dir(compiled_db, tmp_path_factory) -> pathlib.Path:
    directory = tmp_path_factory.mktemp("procpool") / "engine"
    compiled_db.save(directory)
    return directory


#: The seeded request batch every tier executes (mixed rounds,
#: replacement modes and seeds across all eight sets).
def request_plan(names):
    return [
        dict(name=names[i % len(names)], rounds=1 + i % 5,
             replacement=(i % 3 != 0), seed=20_000 + i)
        for i in range(48)
    ]


def run_direct(db, plan):
    specs = [SampleSpec(r["name"], r["rounds"], r["replacement"],
                        seed=r["seed"], key=str(i))
             for i, r in enumerate(plan)]
    return [encode_result(res) for res in db.sample_many(specs).ordered()]


def run_threaded(compiled_config, workload, plan):
    pool = ShardedEnginePool(compiled_config, 4)
    service = BloomService(pool, ServiceConfig(shards=4))
    for name, ids in workload:
        service.add_set(name, ids)
    with service:
        futures = [service.submit_sample(r["name"], r["rounds"],
                                         r["replacement"], seed=r["seed"])
                   for r in plan]
        return [encode_result(f.result(60)) for f in futures]


def run_process_pool(serving_dir, workers, plan):
    pool = ProcessShardPool(serving_dir, workers,
                            policy=BatchPolicy(max_batch=64,
                                               max_delay_ms=1.0))
    pool.start()
    try:
        futures = [pool.submit("sample", (r["name"],), rounds=r["rounds"],
                               replacement=r["replacement"], seed=r["seed"])
                   for r in plan]
        return [f.result(60) for f in futures]
    finally:
        pool.close()


class TestCrossProcessBitIdentity:
    def test_one_and_four_process_pools_match_thread_tier_and_engine(
            self, compiled_db, compiled_config, workload, serving_dir):
        """The satellite property: 4 tiers, one answer — ops included."""
        names = [name for name, _ in workload]
        plan = request_plan(names)
        direct = run_direct(compiled_db, plan)
        threaded = run_threaded(compiled_config, workload, plan)
        single = run_process_pool(serving_dir, 1, plan)
        multi = run_process_pool(serving_dir, 4, plan)
        # Dict equality covers values, requested, shortfall AND the
        # OpCounter payload (intersections/memberships/nodes/backtracks).
        assert threaded == direct
        assert single == direct
        assert multi == direct

    def test_reconstruct_and_contains_match_direct(self, compiled_db,
                                                   workload, serving_dir):
        name, ids = workload[0]
        pool = ProcessShardPool(serving_dir, 2)
        service = ProcessService(pool).start()
        try:
            got = service.reconstruct(name, exhaustive=True)
            want = encode_result(
                compiled_db.store.reconstruct_many([name],
                                                   exhaustive=True)[0])
            assert got == want
            assert service.contains(name, int(ids[0]))["contains"] is True
        finally:
            service.close()


class TestServingDirectoryProtocol:
    def test_epoch_file_is_written_and_json(self, serving_dir):
        pool = ProcessShardPool(serving_dir, 2)
        try:
            state = read_epoch_state(serving_dir)
            assert state == pool.epoch_state()
            for key in ("gen", "epoch", "wal_seq", "snapshot_epoch",
                        "plan", "sets", "workers"):
                assert key in state
            # The EPOCH names a generation pair that actually exists.
            assert (serving_dir / state["plan"]).exists()
            assert (serving_dir / state["sets"]).exists()
            raw = json.loads((serving_dir / EPOCH_FILE).read_text())
            assert raw == state
        finally:
            pool.close()

    def test_generation_pair_shares_inodes_with_canonical(self, serving_dir):
        """Promotion hardlinks — one physical snapshot, two names."""
        pool = ProcessShardPool(serving_dir, 2)
        try:
            state = pool.epoch_state()
            assert (serving_dir / state["plan"]).stat().st_ino == \
                (serving_dir / "plan.bst").stat().st_ino
            assert (serving_dir / state["sets"]).stat().st_ino == \
                (serving_dir / "sets.bst").stat().st_ino
        finally:
            pool.close()

    def test_promotion_bumps_generation_and_resets_worker_logs(
            self, serving_dir):
        pool = ProcessShardPool(serving_dir, 2)
        pool.start()
        try:
            before = pool.epoch_state()
            pool.insert_ids(np.array([7000, 7001], dtype=np.uint64))
            assert pool.epoch_state()["wal_seq"] == 1
            pool.compact()
            after = pool.epoch_state()
            assert after["gen"] == before["gen"] + 1
            assert after["wal_seq"] == 0
            assert after["plan"] != before["plan"]
            # Per-worker logs exist, one directory per worker process.
            wal_root = serving_dir / WORKER_WAL_DIR
            assert sorted(p.name for p in wal_root.iterdir()) == ["00", "01"]
        finally:
            pool.close()

    def test_membership_changes_preserve_results(self, serving_dir,
                                                 compiled_db, workload):
        """Grow then shrink the ring; seeded results never change."""
        names = [name for name, _ in workload]
        plan = request_plan(names)[:12]
        direct = run_direct(compiled_db, plan)

        pool = ProcessShardPool(serving_dir, 2)
        pool.start()
        try:
            def probe():
                futures = [pool.submit("sample", (r["name"],),
                                       rounds=r["rounds"],
                                       replacement=r["replacement"],
                                       seed=r["seed"]) for r in plan]
                return [f.result(60) for f in futures]

            assert probe() == direct
            assert pool.add_worker() == 3
            assert probe() == direct
            assert pool.remove_worker() == 2
            assert probe() == direct
        finally:
            pool.close()


class TestGuardRails:
    def test_from_engine_rejects_object_plans(self, tmp_path, workload):
        db = BloomDB(EngineConfig(namespace_size=NAMESPACE, seed=5))
        with pytest.raises(ValueError, match="compiled"):
            ProcessShardPool.from_engine(db, tmp_path / "nope")

    def test_load_rejects_object_plan_directories(self, tmp_path):
        db = BloomDB(EngineConfig(namespace_size=NAMESPACE, seed=5))
        db.add_set("s", np.arange(10, dtype=np.uint64))
        db.save(tmp_path / "objects")
        with pytest.raises(ValueError, match="compiled"):
            ProcessShardPool(tmp_path / "objects", 2)

    def test_submit_rejects_write_ops(self, serving_dir):
        pool = ProcessShardPool(serving_dir, 1)
        pool.start()
        try:
            with pytest.raises(ValueError, match="unknown read op"):
                pool.submit("insert", ("set0",))
        finally:
            pool.close()

    def test_unknown_set_maps_to_keyerror(self, serving_dir):
        pool = ProcessShardPool(serving_dir, 1)
        service = ProcessService(pool).start()
        try:
            with pytest.raises(KeyError, match="no-such-set"):
                service.sample("no-such-set")
        finally:
            service.close()

    def test_checkpoint_requires_durable_pool(self, serving_dir):
        from repro.api import DurabilityError

        pool = ProcessShardPool(serving_dir, 1)
        try:
            with pytest.raises(DurabilityError, match="durable"):
                pool.checkpoint()
        finally:
            pool.close()
