"""Epoch-promotion races: concurrent writes never tear a read.

The serving invariant under concurrent mutation: every sampled answer is
bit-identical to the answer some *complete* engine state gives — the
state after write 0, 1, ... k — never a blend of two epochs.  A twin
engine replays the identical write sequence up front to enumerate those
reference states; the concurrent phase then checks every observed wire
dict is (a) exactly one of them and (b) monotone — a worker can lag the
leader by whole writes, but can never travel back in time or serve a
mixture.  Read-your-writes holds at the ack boundary: once a mutation
returns, the very next read reflects it.
"""

import threading

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig, SampleSpec
from repro.service import ProcessShardPool
from repro.service.client import encode_result

NAMESPACE = 8_000
ROUNDS = 8  # mutation rounds; references enumerate ROUNDS + 1 states
PROBE_SEED = 777


def build_db(workload, target_ids):
    config = EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                          set_size=150, seed=5, plan="compiled",
                          mutation="delta", tree="dynamic")
    db = BloomDB.from_config(config)
    for name, ids in workload:
        db.add_set(name, ids)
    db.add_set("t", target_ids)
    return db


def probe_reference(db):
    spec = SampleSpec("t", 4, False, seed=PROBE_SEED, key="probe")
    return encode_result(db.sample_many([spec]).ordered()[0])


@pytest.fixture()
def race_setup(workload, tmp_path):
    """Pool + write batches + per-state references from a twin engine."""
    rng = np.random.default_rng(1234)
    universe = rng.permutation(NAMESPACE).astype(np.uint64)
    target = universe[:100]
    batches = [universe[100 + 40 * k: 140 + 40 * k]
               for k in range(ROUNDS)]

    # The twin replays the exact write sequence the pool will see; its
    # auto-compaction decisions are deterministic, so state k here is
    # bit-identical to the leader (and every caught-up worker) at k.
    twin = build_db(workload, target)
    references = [probe_reference(twin)]
    for batch in batches:
        twin.extend_set("t", batch)
        references.append(probe_reference(twin))
    assert len({str(r) for r in references}) > 1, \
        "write batches must actually change the probe answer"

    pool = ProcessShardPool.from_engine(
        build_db(workload, target), tmp_path / "engine", 2)
    pool.start()
    yield pool, batches, references
    pool.close()


def probe_pool(pool):
    return pool.submit("sample", ("t",), rounds=4, replacement=False,
                       seed=PROBE_SEED).result(60)


class TestEpochPromotionRaces:
    def test_reads_are_read_your_writes_at_every_ack(self, race_setup):
        """Sequential form: after each ack the next read serves state k."""
        pool, batches, references = race_setup
        assert probe_pool(pool) == references[0]
        for k, batch in enumerate(batches):
            pool.extend_set("t", batch)
            assert probe_pool(pool) == references[k + 1]

    def test_concurrent_inserts_never_tear_a_read(self, race_setup):
        """The satellite race: writer hammers, reader never sees a blend."""
        pool, batches, references = race_setup
        failures = []
        done = threading.Event()

        def writer():
            try:
                for batch in batches:
                    pool.extend_set("t", batch)
            except Exception as exc:  # surface in the main thread
                failures.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        observed_states = []
        try:
            while not done.is_set():
                observed_states.append(references.index(probe_pool(pool)))
        finally:
            thread.join(timeout=60)
        assert not failures, failures[0]

        # Every observed dict indexed into the reference list — a torn
        # epoch would have raised ValueError above.  And state only
        # moves forward: lag is allowed, time travel is not.
        assert observed_states == sorted(observed_states)
        # Read-your-writes after the final ack.
        assert probe_pool(pool) == references[-1]

    def test_promotions_during_reads_serve_identical_answers(self,
                                                             race_setup):
        """Generation swaps mid-traffic are invisible to the answers."""
        pool, batches, references = race_setup
        failures = []
        done = threading.Event()

        def writer():
            try:
                for k, batch in enumerate(batches):
                    pool.extend_set("t", batch)
                    if k % 2 == 1:  # interleave full promotions
                        pool.compact()
            except Exception as exc:
                failures.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        observed_states = []
        try:
            while not done.is_set():
                observed_states.append(references.index(probe_pool(pool)))
        finally:
            thread.join(timeout=120)
        assert not failures, failures[0]
        assert observed_states == sorted(observed_states)

        final = probe_pool(pool)
        assert final == references[-1]
        # The promotions really happened: generation moved past 0.
        assert pool.epoch_state()["gen"] >= 2
