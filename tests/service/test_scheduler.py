"""Scheduler semantics: bit-identity under interleaving, batching, admission.

The load-bearing test is the property test: any interleaving of N
concurrent single requests must return bit-identical results to the same
requests issued as one direct :meth:`repro.api.BloomDB.sample_many`
batch — that is the serving layer's correctness contract (satellite
task of ISSUE 3).
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import SampleSpec
from repro.service import (
    BatchPolicy,
    BloomService,
    ServiceConfig,
    ServiceOverloadedError,
    ShardWorker,
)
from repro.service.pool import ShardedEnginePool
from repro.service.requests import ServiceRequest


def make_service(engine_config, workload, **knobs) -> BloomService:
    config = ServiceConfig(**knobs)
    pool = ShardedEnginePool(engine_config, config.shards,
                             replicas=config.replicas)
    service = BloomService(pool, config)
    for name, ids in workload:
        service.add_set(name, ids)
    return service


#: Service shapes the property test sweeps: many shards, one shard,
#: no-delay opportunistic batching, and single-request batches
#: (max_batch=1 disables coalescing entirely — the degenerate case).
POLICIES = [
    dict(shards=4, max_batch=256, max_delay_ms=2.0),
    dict(shards=1, max_batch=256, max_delay_ms=2.0),
    dict(shards=4, max_batch=256, max_delay_ms=0.0),
    dict(shards=2, max_batch=1, max_delay_ms=1.0),
]


class TestInterleavingProperty:
    @pytest.mark.parametrize("knobs", POLICIES)
    def test_concurrent_singles_match_one_direct_batch(
            self, knobs, engine_config, workload, reference_db):
        """N concurrent requests == one direct sample_many spec batch."""
        names = [name for name, _ in workload]
        specs = [
            SampleSpec(names[i % len(names)], rounds=1 + i % 5,
                       replacement=(i % 3 != 0), seed=10_000 + i,
                       key=str(i))
            for i in range(48)
        ]
        want = [result.values
                for result in reference_db.sample_many(specs).ordered()]

        for trial in range(3):  # three different submission interleavings
            service = make_service(engine_config, workload, **knobs)
            order = list(range(len(specs)))
            random.Random(trial).shuffle(order)
            futures: dict[int, object] = {}
            barrier = threading.Barrier(8)

            def submit_block(block, futures=futures, barrier=barrier,
                             service=service, order=order):
                barrier.wait()  # maximise submission concurrency
                for i in order[block::8]:
                    spec = specs[i]
                    futures[i] = service.submit_sample(
                        spec.name, spec.rounds, spec.replacement,
                        seed=spec.seed)

            with service:
                with ThreadPoolExecutor(max_workers=8) as executor:
                    for handle in [executor.submit(submit_block, b)
                                   for b in range(8)]:
                        handle.result(30)
                got = [futures[i].result(30).values
                       for i in range(len(specs))]
            assert got == want, f"trial {trial} diverged under {knobs}"

    def test_reconstruction_matches_direct_calls(self, engine_config,
                                                 workload, reference_db):
        service = make_service(engine_config, workload, shards=4)
        names = [name for name, _ in workload]
        with service:
            futures = [service.submit_reconstruct(name) for name in names]
            got = [future.result(30) for future in futures]
        for name, result in zip(names, got):
            want = reference_db.reconstruct(name)
            assert np.array_equal(result.elements, want.elements)

    def test_contains_and_union_match_direct_calls(self, engine_config,
                                                   workload, reference_db):
        service = make_service(engine_config, workload, shards=3)
        name, ids = workload[0]
        with service:
            assert service.contains(name, int(ids[0])) is True
            got = service.sample_union([w[0] for w in workload[:3]], seed=77)
        want = reference_db.store.sample_union(
            [w[0] for w in workload[:3]], rng=77)
        assert got.value == want.value


class TestBatching:
    def test_coalescing_actually_happens(self, engine_config, workload):
        service = make_service(engine_config, workload, shards=1,
                               max_batch=256, max_delay_ms=20.0)
        with service:
            futures = [service.submit_sample(workload[i % 8][0], 2, seed=i)
                       for i in range(64)]
            for future in futures:
                future.result(30)
        batch = service.stats()["histograms"]["batch_size"]
        assert batch["max"] > 1  # at least one multi-request dispatch

    def test_max_batch_one_still_serves(self, engine_config, workload):
        service = make_service(engine_config, workload, shards=2,
                               max_batch=1)
        with service:
            values = service.sample(workload[0][0], r=3, seed=5).values
        assert len(values) == 3

    def test_batch_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay_ms=-1)
        with pytest.raises(ValueError):
            BatchPolicy(queue_depth=0)


class TestAdmissionControl:
    def test_full_queue_rejects_with_503_error(self, engine_config,
                                               workload):
        from repro.service.metrics import Metrics

        pool = ShardedEnginePool(engine_config, 1)
        for name, ids in workload[:1]:
            pool.add_set(name, ids)
        worker = ShardWorker(0, pool, BatchPolicy(queue_depth=4),
                             Metrics())
        # Worker thread never started: the queue fills and must reject.
        for i in range(4):
            worker.submit(ServiceRequest(op="sample",
                                         names=(workload[0][0],), seed=i))
        with pytest.raises(ServiceOverloadedError):
            worker.submit(ServiceRequest(op="sample",
                                         names=(workload[0][0],), seed=9))
        assert worker.metrics.counter("rejected_total") == 1
        assert worker.metrics.counter("sample.rejected") == 1

    def test_unknown_set_fails_that_request_only(self, engine_config,
                                                 workload):
        service = make_service(engine_config, workload, shards=2)
        with service:
            bad = service.submit_sample("no-such-set", 2, seed=1)
            good = service.submit_sample(workload[0][0], 2, seed=1)
            assert len(good.result(30).values) == 2
            with pytest.raises(KeyError):
                bad.result(30)
        assert service.metrics.counter("errors_total") == 1

    def test_submit_after_stop_is_rejected(self, engine_config, workload):
        service = make_service(engine_config, workload, shards=1)
        service.start()
        service.stop()
        with pytest.raises(RuntimeError):
            service.submit_sample(workload[0][0])

    def test_service_restarts_after_stop(self, engine_config, workload):
        # Threads cannot be restarted, so the scheduler must build fresh
        # workers on a second start().
        service = make_service(engine_config, workload, shards=2)
        with service:
            first = service.sample(workload[0][0], r=3, seed=4).values
        with service:
            second = service.sample(workload[0][0], r=3, seed=4).values
        assert first == second


class TestCancellation:
    def test_cancelled_future_does_not_kill_the_shard_worker(
            self, engine_config, workload):
        service = make_service(engine_config, workload, shards=1,
                               max_delay_ms=50.0)
        with service:
            doomed = service.submit_sample(workload[0][0], 2, seed=1)
            doomed.cancel()  # may or may not win the race with dispatch
            # The worker must survive and keep serving either way.
            for i in range(5):
                values = service.sample(workload[1][0], r=2,
                                        seed=i).values
                assert len(values) == 2


class TestServingSafeMutations:
    def test_add_set_while_serving(self, engine_config, workload):
        service = make_service(engine_config, workload, shards=2)
        with service:
            ids = np.arange(0, 500, 7, dtype=np.uint64)
            service.add_set("fresh", ids)
            values = service.sample("fresh", r=8, seed=3).values
        assert values
        assert all(v % 7 == 0 for v in values)

    def test_failed_mutation_registers_no_occupancy(self):
        # extend_set of a nonexistent name must leave every shard's
        # occupancy untouched — matching the direct engine path.
        from repro.api import EngineConfig

        config = EngineConfig(namespace_size=16_000, accuracy=0.9,
                              set_size=100, tree="pruned", seed=3)
        pool = ShardedEnginePool(config, shards=2)
        service = BloomService(pool, ServiceConfig(shards=2))
        with service:
            with pytest.raises(KeyError):
                service.extend_set("ghost", np.arange(50, dtype=np.uint64))
        for engine in pool.engines:
            assert engine.occupied is None or engine.occupied.size == 0

    def test_add_set_broadcasts_occupancy_on_pruned(self):
        from repro.api import EngineConfig

        config = EngineConfig(namespace_size=16_000, accuracy=0.9,
                              set_size=100, tree="pruned", seed=3)
        pool = ShardedEnginePool(config, shards=3)
        service = BloomService(pool, ServiceConfig(shards=3))
        with service:
            ids = np.arange(100, 1_100, dtype=np.uint64)
            service.add_set("live", ids)
            assert service.sample("live", r=4, seed=1).values
        for engine in pool.engines:
            assert engine.occupied.size == 1_000


class TestBarrierOccupancyWrites:
    """insert/retire as first-class scheduler requests: one barrier-
    coordinated request per shard, applied ring-wide by a single leader
    while every worker is parked."""

    def make_dynamic_service(self, shards=3):
        from repro.api import EngineConfig

        rng = np.random.default_rng(6)
        occupied = np.sort(rng.choice(16_000, 2_000,
                                      replace=False).astype(np.uint64))
        config = EngineConfig(namespace_size=16_000, accuracy=0.9,
                              set_size=150, tree="dynamic",
                              plan="compiled", seed=3)
        pool = ShardedEnginePool(config, shards=shards, occupied=occupied)
        service = BloomService(pool, ServiceConfig(shards=shards,
                                                   max_delay_ms=1.0))
        service.add_set("alpha", rng.choice(occupied, 150, replace=False))
        service.add_set("beta", rng.choice(occupied, 150, replace=False))
        return service, occupied

    def test_insert_and_retire_while_serving(self):
        import threading

        service, occupied = self.make_dynamic_service()
        free = np.setdiff1d(np.arange(16_000, dtype=np.uint64), occupied)
        errors = []
        stop = threading.Event()

        def hammer():
            i = 0
            while not stop.is_set():
                try:
                    service.sample("alpha" if i % 2 else "beta", r=4,
                                   seed=i)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                i += 1

        with service:
            readers = [threading.Thread(target=hammer) for _ in range(3)]
            for reader in readers:
                reader.start()
            try:
                for cycle in range(6):
                    batch = free[cycle * 25:(cycle + 1) * 25]
                    service.insert_ids(batch)
                    service.retire_ids(batch)
            finally:
                stop.set()
                for reader in readers:
                    reader.join(10)
        assert not errors
        for engine in service.pool.engines:
            assert engine.occupied.size == occupied.size
            assert np.array_equal(engine.occupied,
                                  service.pool.engines[0].occupied)

    def test_idle_service_applies_directly(self):
        service, occupied = self.make_dynamic_service(shards=2)
        service.retire_ids(occupied[:50])  # scheduler not started
        for engine in service.pool.engines:
            assert engine.occupied.size == occupied.size - 50

    def test_retire_on_static_raises(self, engine_config, workload):
        from repro.api import BackendCapabilityError

        service = make_service(engine_config, workload)
        with service:
            with pytest.raises(BackendCapabilityError):
                service.retire_ids([1, 2, 3])
