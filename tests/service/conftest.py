"""Shared fixtures for the serving-subsystem suite.

One small engine configuration used everywhere, plus a deterministic
eight-set workload so coalesced results can be compared bit-for-bit
against a reference :class:`~repro.api.BloomDB` built the same way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig

NAMESPACE = 8_000


@pytest.fixture(scope="session")
def engine_config() -> EngineConfig:
    """The engine knobs every service/pool/reference engine shares."""
    return EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                        set_size=150, seed=5)


@pytest.fixture(scope="session")
def workload() -> list[tuple[str, np.ndarray]]:
    """The deterministic (name, ids) pairs every consumer loads."""
    rng = np.random.default_rng(42)
    return [
        (f"set{i}", rng.choice(NAMESPACE, 150,
                               replace=False).astype(np.uint64))
        for i in range(8)
    ]


@pytest.fixture(scope="session")
def reference_db(engine_config, workload) -> BloomDB:
    """The unsharded engine coalesced results must match bit-for-bit."""
    db = BloomDB.from_config(engine_config)
    for name, ids in workload:
        db.add_set(name, ids)
    return db
