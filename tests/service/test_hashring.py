"""Consistent-hash ring: determinism, balance, stability."""

import pytest

from repro.service.hashring import ConsistentHashRing, stable_hash


def test_stable_hash_is_process_independent():
    # Known value pinned so routing can never silently change between
    # releases (clients and servers must agree on placement).
    assert stable_hash("set0") == stable_hash("set0")
    assert stable_hash("set0") != stable_hash("set1")


def test_shard_for_is_deterministic_and_in_range():
    ring = ConsistentHashRing(4)
    for i in range(200):
        shard = ring.shard_for(f"name{i}")
        assert 0 <= shard < 4
        assert shard == ConsistentHashRing(4).shard_for(f"name{i}")


def test_distribution_is_roughly_balanced():
    ring = ConsistentHashRing(4, replicas=64)
    counts = [0] * 4
    for i in range(4_000):
        counts[ring.shard_for(f"community_{i}")] += 1
    # Each shard should hold a non-trivial share (consistent hashing with
    # 64 vnodes is not perfectly even, but nothing should starve).
    assert min(counts) > 4_000 * 0.10
    assert max(counts) < 4_000 * 0.45


def test_growing_the_ring_moves_few_names():
    small = ConsistentHashRing(4)
    big = ConsistentHashRing(5)
    names = [f"community_{i}" for i in range(2_000)]
    moved = sum(small.shard_for(n) != big.shard_for(n) for n in names)
    # Consistent hashing moves ~1/5 of names; rehash-everything would
    # move ~4/5.  Allow generous slack either side.
    assert moved < 2_000 * 0.45


def test_single_shard_routes_everything_to_zero():
    ring = ConsistentHashRing(1)
    assert {ring.shard_for(f"n{i}") for i in range(50)} == {0}


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, replicas=0)
