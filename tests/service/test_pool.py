"""ShardedEnginePool: routing, replication invariants, cross-shard algebra."""

import numpy as np
import pytest

from repro.api import EngineConfig
from repro.service.pool import ShardedEnginePool


@pytest.fixture(scope="module")
def pool(engine_config, workload):
    p = ShardedEnginePool(engine_config, shards=4)
    for name, ids in workload:
        p.add_set(name, ids)
    return p


class TestRouting:
    def test_every_set_lands_on_its_ring_shard(self, pool, workload):
        for name, _ in workload:
            shard = pool.shard_of(name)
            assert name in pool.engines[shard].store
            for i, engine in enumerate(pool.engines):
                if i != shard:
                    assert name not in engine.store

    def test_names_merge_across_shards(self, pool, workload):
        assert pool.names() == sorted(n for n, _ in workload)
        assert len(pool) == len(workload)

    def test_contains_routes_to_owner(self, pool, workload):
        name, ids = workload[0]
        assert pool.contains(name, int(ids[0]))


class TestStaticTreeSharing:
    def test_static_shards_share_one_tree_object(self, pool):
        trees = {id(engine.tree) for engine in pool.engines}
        assert len(trees) == 1
        assert pool.describe()["shared_tree"] is True

    def test_results_are_shard_independent(self, pool, reference_db,
                                           workload):
        # Same seed, same set, any shard's engine: identical draws.
        name, _ = workload[3]
        want = reference_db.store.sample_many(name, 6, rng=123).values
        owner = pool.engine_for(name)
        assert owner.store.sample_many(name, 6, rng=123).values == want


class TestOccupancyBackends:
    def test_pruned_pool_broadcasts_occupancy(self):
        config = EngineConfig(namespace_size=16_000, accuracy=0.9,
                              set_size=100, tree="pruned", seed=3)
        pool = ShardedEnginePool(config, shards=3)
        rng = np.random.default_rng(9)
        ids = rng.choice(16_000, 400, replace=False).astype(np.uint64)
        pool.add_set("alpha", ids[:200])
        pool.add_set("beta", ids[200:])
        # Every shard's tree saw every id, so the trees stay identical.
        for engine in pool.engines:
            assert engine.occupied is not None
            assert engine.occupied.size == 400
        # And cross-shard queries agree regardless of executing shard.
        merged = pool.union_filter(["alpha", "beta"])
        values = {
            engine.store.sample_filter(merged, rng=7).value
            for engine in pool.engines
        }
        assert len(values) == 1

    def test_per_shard_trees_are_distinct_objects(self):
        config = EngineConfig(namespace_size=4_000, tree="pruned", seed=1,
                              set_size=50)
        pool = ShardedEnginePool(config, shards=2)
        assert pool.engines[0].tree is not pool.engines[1].tree
        assert pool.describe()["shared_tree"] is False


class TestAlgebra:
    def test_union_filter_matches_unsharded_store(self, pool, reference_db,
                                                  workload):
        names = [n for n, _ in workload[:3]]
        want = reference_db.store.union_filter(names)
        got = pool.union_filter(names)
        assert np.array_equal(got.bits.words, want.bits.words)

    def test_intersection_filter_matches_unsharded_store(self, pool,
                                                         reference_db,
                                                         workload):
        names = [n for n, _ in workload[:2]]
        want = reference_db.store.intersection_filter(names)
        got = pool.intersection_filter(names)
        assert np.array_equal(got.bits.words, want.bits.words)

    def test_empty_names_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.union_filter([])


class TestLifecycle:
    def test_extend_and_drop(self, engine_config):
        pool = ShardedEnginePool(engine_config, shards=2)
        pool.add_set("grow", np.arange(10, dtype=np.uint64))
        pool.extend_set("grow", np.arange(10, 20, dtype=np.uint64))
        assert pool.contains("grow", 15)
        pool.drop_set("grow")
        assert "grow" not in pool
        with pytest.raises(KeyError):
            pool.filter("grow")

    def test_from_engine_reshards_a_loaded_db(self, reference_db, workload):
        pool = ShardedEnginePool.from_engine(reference_db, shards=3)
        assert pool.names() == reference_db.names()
        for name, _ in workload:
            want = reference_db.filter(name)
            got = pool.filter(name)
            assert np.array_equal(got.bits.words, want.bits.words)
            # Copied, not aliased: mutating the pool leaves the source alone.
            assert got is not want

    def test_invalid_shard_count(self, engine_config):
        with pytest.raises(ValueError):
            ShardedEnginePool(engine_config, shards=0)

    def test_install_rejects_incompatible_and_duplicate_filters(
            self, engine_config, reference_db):
        from repro.api import BloomDB
        from repro.core.store import DuplicateSetError

        pool = ShardedEnginePool.from_engine(reference_db, shards=2)
        name = reference_db.names()[0]
        store = pool.engine_for(name).store
        with pytest.raises(DuplicateSetError):
            store.install(name, reference_db.filter(name).copy())
        other = BloomDB.plan(namespace_size=500, accuracy=0.8, set_size=20,
                             seed=1)
        other.add_set("tiny", np.arange(5, dtype=np.uint64))
        with pytest.raises(ValueError, match="incompatible"):
            store.install("fresh", other.filter("tiny"))


class TestEpochAtomicBroadcast:
    """Regression for the half-updated-ring window: `register_ids` used
    to mutate shards one engine at a time, so a concurrent reader could
    sample shard A post-mutation and shard B pre-mutation.  The write
    path now prepares every shard's next epoch first and promotes them
    with one atomic tuple swap."""

    def make_pool(self, shards=3, tree="dynamic"):
        rng = np.random.default_rng(4)
        occupied = np.sort(rng.choice(16_000, 2_000,
                                      replace=False).astype(np.uint64))
        config = EngineConfig(namespace_size=16_000, accuracy=0.9,
                              set_size=150, tree=tree, plan="compiled",
                              seed=3, compact_threshold=10.0)
        pool = ShardedEnginePool(config, shards=shards, occupied=occupied)
        pool.add_set("alpha", rng.choice(occupied, 150, replace=False))
        return pool, occupied

    def test_ring_snapshot_is_never_half_updated(self):
        """Every epoch snapshot taken while a writer broadcasts shows
        all shards on the same side of each mutation."""
        import threading

        pool, occupied = self.make_pool()
        for engine in pool.engines:
            engine.current_epoch()  # publish epoch 1 everywhere
        free = np.setdiff1d(np.arange(16_000, dtype=np.uint64), occupied)
        inconsistent = []
        stop = threading.Event()

        def snapshotter():
            while not stop.is_set():
                snapshot = pool.ring_epochs()
                ids = {epoch.epoch for epoch in snapshot
                       if epoch is not None}
                if len(ids) > 1:
                    inconsistent.append(tuple(
                        epoch and epoch.epoch for epoch in snapshot))

        reader = threading.Thread(target=snapshotter)
        reader.start()
        try:
            for cycle in range(20):
                pool.register_ids(free[cycle * 20:(cycle + 1) * 20])
        finally:
            stop.set()
            reader.join(10)
        # All shards started at epoch 1 and receive identical mutation
        # streams, so any snapshot mixing two epoch ids is exactly the
        # half-updated ring the old code allowed.
        assert not inconsistent

    def test_retire_broadcast_keeps_shards_identical(self):
        pool, occupied = self.make_pool()
        victims = occupied[:300]
        pool.retire_ids(victims)
        for engine in pool.engines:
            assert engine.occupied.size == occupied.size - 300
            assert not np.isin(victims, engine.occupied).any()

    def test_retire_requires_remove_support(self):
        pool, occupied = self.make_pool(tree="pruned")
        from repro.api import BackendCapabilityError

        with pytest.raises(BackendCapabilityError):
            pool.retire_ids(occupied[:10])

    def test_pool_compact_folds_all_shard_deltas(self):
        pool, occupied = self.make_pool()
        for engine in pool.engines:
            engine.current_epoch()
        pool.retire_ids(occupied[:100])
        assert any(epoch.delta is not None and not epoch.delta.is_empty
                   for epoch in pool.ring_epochs())
        pool.compact()
        for epoch in pool.ring_epochs():
            assert epoch.delta is None or epoch.delta.is_empty
