"""``/healthz`` vs ``/readyz`` on both HTTP tiers.

Liveness ("the process answers") and readiness ("the ring can serve")
are different questions; CI's wait-for-boot polls and any load balancer
need the second one.  Both tiers must answer ``/readyz`` with the same
JSON shape, flip the status code (200/503) on the ``ready`` flag, and
send ``Retry-After`` with every 503.
"""

import urllib.error
import urllib.request

import pytest

from repro.service import (
    AsyncReproServer,
    BloomService,
    HTTPServiceClient,
    ReproServer,
    ServiceClient,
    ServiceConfig,
)
from repro.service.pool import ShardedEnginePool


@pytest.fixture(scope="module")
def thread_server(engine_config, workload):
    pool = ShardedEnginePool(engine_config, 2)
    service = BloomService(pool, ServiceConfig(shards=2, max_delay_ms=1.0))
    for name, ids in workload:
        service.add_set(name, ids)
    with ReproServer(service, port=0) as running:
        yield running


class _LifecycleFacade(ServiceClient):
    def start(self):
        self.service.start()
        return self

    def stop(self):
        self.service.stop()

    def close(self):
        self.service.close()


@pytest.fixture(scope="module")
def async_server(engine_config, workload):
    pool = ShardedEnginePool(engine_config, 2)
    service = BloomService(pool, ServiceConfig(shards=2, max_delay_ms=1.0))
    for name, ids in workload:
        service.add_set(name, ids)
    with AsyncReproServer(_LifecycleFacade(service), port=0) as running:
        yield running


class TestThreadTier:
    def test_healthz_is_liveness_only(self, thread_server):
        client = HTTPServiceClient(thread_server.url)
        assert client.healthz() == {"ok": True}

    def test_readyz_reports_the_scheduler_ring(self, thread_server):
        payload = HTTPServiceClient(thread_server.url).readyz()
        assert payload["ready"] is True
        assert payload["mode"] == "thread"
        assert payload["workers"] == 2
        assert payload["alive"] == 2

    def test_readyz_answers_200_when_ready(self, thread_server):
        with urllib.request.urlopen(thread_server.url + "/readyz",
                                    timeout=10) as response:
            assert response.status == 200

    def test_in_process_client_agrees(self, thread_server):
        payload = ServiceClient(thread_server.service).readyz()
        assert payload["ready"] is True
        assert payload["workers"] == 2

    def test_not_ready_is_a_503_with_retry_after(self, engine_config,
                                                 workload):
        pool = ShardedEnginePool(engine_config, 2)
        service = BloomService(pool,
                               ServiceConfig(shards=2, max_delay_ms=1.0))
        for name, ids in workload[:2]:
            service.add_set(name, ids)
        with ReproServer(service, port=0) as running:
            service.stop()  # workers drained: alive, but not ready
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(running.url + "/readyz", timeout=10)
            assert info.value.code == 503
            assert info.value.headers.get("Retry-After") == "1"
            # The body still carries the full readiness detail.
            import json
            payload = json.loads(info.value.read().decode("utf-8"))
            assert payload["ready"] is False
            # The client returns that payload instead of raising.
            assert HTTPServiceClient(running.url).readyz() == payload


class TestAsyncTier:
    def test_healthz(self, async_server):
        client = HTTPServiceClient(async_server.url)
        assert client.healthz() == {"ok": True}

    def test_readyz_shape_matches_the_thread_tier(self, async_server):
        payload = HTTPServiceClient(async_server.url).readyz()
        assert payload["ready"] is True
        assert payload["mode"] == "thread"
        assert payload["workers"] == 2

    def test_readyz_answers_200_when_ready(self, async_server):
        with urllib.request.urlopen(async_server.url + "/readyz",
                                    timeout=10) as response:
            assert response.status == 200
