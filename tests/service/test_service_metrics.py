"""Metrics registry: histograms, counters, snapshots, thread safety."""

import threading

import pytest

from repro.service.metrics import BATCH_BUCKETS, Histogram, Metrics


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["p50"] is None

    def test_observe_updates_summary(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.5
        assert snap["max"] == 500.0
        assert snap["sum"] == 555.5

    def test_quantiles_interpolate_within_the_bucket(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(50.0)
        # p50 lands in the underflow bucket: interpolate between the
        # observed minimum (0.5) and the bucket edge (1.0) at rank
        # 50/99 — not the old upper-edge answer of 1.0.
        assert hist.quantile(0.5) == pytest.approx(0.5 + 0.5 * 50 / 99)
        # p99.9 lands on the lone 50.0 in (10, 100]: the upper edge
        # clamps to the observed maximum before interpolating.
        assert hist.quantile(0.999) == pytest.approx(10 + 0.9 * (50 - 10))

    def test_single_observation_reports_itself_exactly(self):
        hist = Histogram()
        hist.observe(3e-5)
        for q in (0.01, 0.5, 0.99):
            assert hist.quantile(q) == 3e-5

    def test_underflow_bucket_interpolates_from_observed_min(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.25)
        hist.observe(0.75)
        assert hist.quantile(0.5) == pytest.approx(0.5)

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(123.0)
        assert hist.quantile(0.99) == 123.0

    def test_batch_buckets_cover_powers_of_two(self):
        hist = Histogram(buckets=BATCH_BUCKETS)
        hist.observe(64.0)
        assert hist.quantile(0.5) == 64.0


class TestMetrics:
    def test_counters_and_histograms_appear_in_snapshot(self):
        metrics = Metrics()
        metrics.inc("requests_total")
        metrics.inc("requests_total", 2)
        metrics.observe("sample.latency_s", 0.001)
        snap = metrics.snapshot()
        assert snap["counters"]["requests_total"] == 3
        assert snap["histograms"]["sample.latency_s"]["count"] == 1
        assert snap["uptime_s"] >= 0

    def test_counter_reads_default_to_zero(self):
        assert Metrics().counter("nope") == 0

    def test_concurrent_recording_loses_nothing(self):
        metrics = Metrics()

        def record():
            for _ in range(1_000):
                metrics.inc("hits")
                metrics.observe("lat", 0.5)

        threads = [threading.Thread(target=record) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("hits") == 8_000
        assert metrics.snapshot()["histograms"]["lat"]["count"] == 8_000
