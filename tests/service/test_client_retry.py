"""The HTTP client's bounded retry: idempotent-only, deadline-bounded.

A scripted stub server plays exact response sequences (503 with
``Retry-After``, then 200) so every claim is counted, not inferred:
seeded reads retry, writes and unseeded reads never do, attempts stop
at ``max_attempts``, and a deadline bounds the whole logical request.
"""

import http.server
import json
import threading
import time

import pytest

from repro.service import HTTPServiceClient, RetryPolicy
from repro.service.client import HTTPError


class _Script:
    """A queue of scripted responses plus a log of requests served."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.requests = []


@pytest.fixture()
def scripted():
    """Factory: boot a stub server that plays a response script."""
    servers = []

    def boot(responses):
        script = _Script(responses)

        class Handler(http.server.BaseHTTPRequestHandler):
            def _serve(self):
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                script.requests.append((self.command, self.path, body))
                if script.responses:
                    status, headers, payload = script.responses.pop(0)
                else:
                    status, headers, payload = 200, {}, {"ok": True}
                data = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            do_GET = do_POST = _serve

            def log_message(self, *args):
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        url = f"http://127.0.0.1:{server.server_address[1]}"
        return url, script

    yield boot
    for server in servers:
        server.shutdown()
        server.server_close()


def _client(url, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3,
                                           base_delay_s=0.001,
                                           jitter=0.0))
    return HTTPServiceClient(url, timeout=5.0, retry_seed=7, **kwargs)


FLAKY = [(503, {"Retry-After": "0"}, {"error": "failing over"}),
         (200, {}, {"values": [1, 2], "requested": 2, "shortfall": 0,
                    "ops": {}})]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)

    def test_delay_grows_and_caps(self):
        import random
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(a, rng) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_retry_after_is_a_floor(self):
        import random
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.0)
        assert policy.delay(0, random.Random(0), retry_after=0.3) == 0.3
        assert policy.delay(3, random.Random(0), retry_after=0.3) == 0.8

    def test_jitter_is_seeded_and_bounded(self):
        import random
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25)
        a = [policy.delay(0, random.Random(5)) for _ in range(3)]
        b = [policy.delay(0, random.Random(5)) for _ in range(3)]
        assert a == b
        for delay in a:
            assert 0.075 <= delay <= 0.125


class TestIdempotencyGate:
    def test_seeded_sample_is_retried(self, scripted):
        url, script = scripted(list(FLAKY))
        response = _client(url).sample("s", r=2, seed=11)
        assert response["values"] == [1, 2]
        assert len(script.requests) == 2

    def test_unseeded_sample_is_never_retried(self, scripted):
        url, script = scripted(list(FLAKY))
        with pytest.raises(HTTPError) as info:
            _client(url).sample("s", r=2)
        assert info.value.status == 503
        assert info.value.retry_after == 0.0
        assert len(script.requests) == 1

    def test_writes_are_never_retried(self, scripted):
        url, script = scripted(list(FLAKY))
        with pytest.raises(HTTPError):
            _client(url).add_set("s", [1, 2, 3])
        assert len(script.requests) == 1

    def test_reconstruct_is_always_idempotent(self, scripted):
        url, script = scripted(list(FLAKY))
        _client(url).reconstruct("s")
        assert len(script.requests) == 2

    def test_gets_are_idempotent_by_method(self, scripted):
        url, script = scripted([(503, {"Retry-After": "0"},
                                 {"error": "busy"}),
                                (200, {}, {"ok": True})])
        assert _client(url).healthz() == {"ok": True}
        assert len(script.requests) == 2

    def test_non_503_errors_are_not_retried(self, scripted):
        url, script = scripted([(404, {}, {"error": "no such set"})])
        with pytest.raises(HTTPError) as info:
            _client(url).sample("s", r=2, seed=11)
        assert info.value.status == 404
        assert len(script.requests) == 1


class TestBounds:
    def test_attempts_stop_at_max(self, scripted):
        url, script = scripted([(503, {"Retry-After": "0"},
                                 {"error": "down"})] * 10)
        with pytest.raises(HTTPError):
            _client(url).sample("s", r=2, seed=11)
        assert len(script.requests) == 3  # max_attempts, no more

    def test_deadline_bounds_the_whole_request(self, scripted):
        url, script = scripted([(503, {"Retry-After": "30"},
                                 {"error": "down"})] * 10)
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.01,
                             jitter=0.0, deadline_s=0.3)
        started = time.monotonic()
        with pytest.raises(HTTPError):
            _client(url, retry=policy).sample("s", r=2, seed=11)
        # Retry-After asked for 30 s sleeps; the deadline clipped them.
        assert time.monotonic() - started < 2.0
        assert len(script.requests) < 10

    def test_no_policy_means_single_attempt(self, scripted):
        url, script = scripted(list(FLAKY))
        client = HTTPServiceClient(url, timeout=5.0)
        with pytest.raises(HTTPError):
            client.sample("s", r=2, seed=11)
        assert len(script.requests) == 1


class TestReadyzClient:
    def test_not_ready_payload_is_returned_not_raised(self, scripted):
        payload = {"ready": False, "mode": "process", "lag_max": 9}
        url, script = scripted([(503, {"Retry-After": "1"}, payload)] * 3)
        assert _client(url).readyz() == payload
        assert len(script.requests) == 1  # a probe must never retry

    def test_ready_payload_passes_through(self, scripted):
        payload = {"ready": True, "mode": "thread"}
        url, script = scripted([(200, {}, payload)])
        assert _client(url).readyz() == payload

    def test_other_503s_still_raise(self, scripted):
        url, script = scripted([(503, {}, {"error": "overloaded"})])
        with pytest.raises(HTTPError):
            _client(url).readyz()
