"""Cross-process metric aggregation: exact fleet totals, kill-9 safe.

Workers ship cumulative metric deltas to the leader on the result pipe
*before* the results they cover, so any scrape taken after a future
resolves has counted that request.  The leader keys each worker's
cumulative export by shard id, which makes the fleet totals — and the
per-worker ``{worker="NN"}`` series — monotone across a SIGKILL and
respawn: the dead worker's contribution is retained, the replacement
starts shipping fresh deltas on top.
"""

import time

import pytest

from repro.api import BloomDB, EngineConfig
from repro.obs.metrics import export_snapshot
from repro.obs.prometheus import parse_exposition, validate_exposition
from repro.service import ProcessShardPool

NAMESPACE = 8_000
_RESPAWN_DEADLINE_S = 30.0


@pytest.fixture()
def pool(workload, tmp_path):
    config = EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                          set_size=150, seed=5, plan="compiled",
                          mutation="delta", tree="dynamic")
    db = BloomDB.from_config(config)
    for name, ids in workload:
        db.add_set(name, ids)
    pool = ProcessShardPool.from_engine(db, tmp_path / "engine", 2)
    pool.start()
    yield pool
    pool.close()


def drive(pool, workload, n, seed):
    """Submit ``n`` sample requests round-robin and wait for each."""
    for i in range(n):
        name = workload[i % len(workload)][0]
        pool.submit("sample", (name,), rounds=2, replacement=False,
                    seed=seed + i).result(60)


def served_series(text):
    """(fleet_total, {worker: value}) for ``requests_served_total``."""
    families = parse_exposition(text)
    fleet = None
    workers = {}
    for _, labels, value in families["requests_served_total"]["samples"]:
        if labels:
            workers[labels["worker"]] = value
        else:
            fleet = value
    return fleet, workers


def wait_for_respawn(pool, shard, restarts_before):
    deadline = time.monotonic() + _RESPAWN_DEADLINE_S
    while time.monotonic() < deadline:
        info = pool.workers_info()[shard]
        if info["alive"] and info["restarts"] > restarts_before:
            return info
        time.sleep(0.05)
    raise AssertionError(f"shard {shard} was not respawned in time")


class TestFleetAggregation:
    def test_fleet_total_equals_driven_equals_worker_sum(self, pool,
                                                         workload):
        n = 24
        drive(pool, workload, n, seed=4000)
        text = pool.metrics_text()
        assert validate_exposition(text) == []
        fleet, workers = served_series(text)
        assert fleet == n
        assert sum(workers.values()) == n
        assert set(workers) == {"00", "01"}, "both shards took traffic"

    def test_snapshot_counters_match_the_scrape(self, pool, workload):
        drive(pool, workload, 8, seed=4400)
        snapshot = export_snapshot(pool.fleet_export())
        fleet, _ = served_series(pool.metrics_text())
        assert snapshot["counters"]["requests_served"] == fleet == 8

    def test_deep_worker_stages_reach_the_leader(self, pool, workload):
        """Descent and frontier-cache series recorded inside worker
        processes must surface in the leader's fleet scrape."""
        drive(pool, workload, 8, seed=4800)
        families = parse_exposition(pool.metrics_text())
        assert families["stage_descent_s"]["type"] == "histogram"
        misses = next(v for _, labels, v in
                      families["frontier_cache_misses_total"]["samples"]
                      if not labels)
        assert misses > 0

    def test_trace_spans_cross_the_process_boundary(self, pool, workload):
        drive(pool, workload, 6, seed=5200)
        payload = pool.trace()
        assert payload["slowest"], "leader retained no worker traces"
        spans = payload["slowest"][0]["spans"]
        assert {"queue", "batch_assembly", "execute"} <= set(spans)
        stages = payload["stages"]
        assert stages["total"]["count"] >= 6
        assert 0 <= stages["total"]["p50"] <= stages["total"]["p99"]


class TestKillNineMonotonicity:
    def test_totals_survive_sigkill_and_respawn(self, pool, workload):
        first = 16
        drive(pool, workload, first, seed=6000)
        fleet_before, workers_before = served_series(pool.metrics_text())
        assert fleet_before == first

        victim = 0
        restarts_before = pool.workers_info()[victim]["restarts"]
        assert pool.kill_worker(victim) is not None
        wait_for_respawn(pool, victim, restarts_before)

        second = 10
        drive(pool, workload, second, seed=7000)
        text = pool.metrics_text()
        assert validate_exposition(text) == []
        fleet_after, workers_after = served_series(text)

        # Exact and monotone: the dead worker's pre-kill contribution is
        # retained, the respawn's fresh deltas stack on top.
        assert fleet_after == first + second
        assert sum(workers_after.values()) == fleet_after
        for worker, value in workers_before.items():
            assert workers_after[worker] >= value

        families = parse_exposition(text)
        restarts = next(v for _, labels, v in
                        families["worker_restarts_total"]["samples"]
                        if not labels)
        assert restarts >= 1
        deaths = next(v for _, labels, v in
                      families["worker_deaths_total"]["samples"]
                      if not labels)
        assert deaths >= 1

    def test_respawn_ships_recovery_counters(self, pool, workload):
        """The replacement worker replays its log and says so."""
        drive(pool, workload, 8, seed=8000)
        victim = 1
        restarts_before = pool.workers_info()[victim]["restarts"]
        assert pool.kill_worker(victim) is not None
        wait_for_respawn(pool, victim, restarts_before)
        drive(pool, workload, 4, seed=9000)

        snapshot = export_snapshot(pool.fleet_export())
        assert snapshot["counters"]["worker_restarts"] >= 1
        assert snapshot["counters"]["requests_served"] == 12
