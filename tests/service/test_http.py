"""The HTTP/JSON front end: round trips, error mapping, stats."""

import numpy as np
import pytest

from repro.service import (
    BloomService,
    HTTPServiceClient,
    ReproServer,
    ServiceClient,
    ServiceConfig,
)
from repro.service.client import HTTPError
from repro.service.pool import ShardedEnginePool


@pytest.fixture(scope="module")
def server(engine_config, workload):
    pool = ShardedEnginePool(engine_config, 2)
    service = BloomService(pool, ServiceConfig(shards=2, max_delay_ms=1.0))
    for name, ids in workload:
        service.add_set(name, ids)
    with ReproServer(service, port=0) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return HTTPServiceClient(server.url)


class TestRoundTrips:
    def test_healthz(self, client):
        assert client.healthz() == {"ok": True}

    def test_sample_matches_in_process_client(self, server, client,
                                              workload):
        name = workload[0][0]
        over_http = client.sample(name, r=6, seed=41)
        in_process = ServiceClient(server.service).sample(name, r=6, seed=41)
        assert over_http == in_process
        assert len(over_http["values"]) == 6

    def test_reconstruct_returns_elements_and_ops(self, client, workload):
        name, ids = workload[1]
        # Exhaustive mode guarantees recall (estimator-guided pruning may
        # miss elements below the noise floor).
        response = client.reconstruct(name, exhaustive=True)
        assert set(ids.tolist()) <= set(response["elements"])
        assert response["ops"]["memberships"] > 0

    def test_contains(self, client, workload):
        name, ids = workload[2]
        assert client.contains(name, int(ids[0]))["contains"] is True

    def test_union_and_intersection(self, client, workload):
        names = [workload[0][0], workload[1][0]]
        union = client.sample_union(names, seed=9)
        assert union["value"] is not None
        sketch = client.sample_intersection(names, seed=9)
        assert "value" in sketch

    def test_add_set_then_query(self, client):
        ids = list(range(0, 900, 9))
        assert client.add_set("added-via-http", ids)["ok"] is True
        got = client.sample("added-via-http", r=4, seed=2)
        assert all(v % 9 == 0 for v in got["values"])

    def test_stats_nonempty(self, client):
        stats = client.stats()
        assert stats["counters"]["served_total"] > 0
        assert stats["pool"]["shards"] == 2
        assert stats["policy"]["max_batch"] > 0
        assert "batch_size" in stats["histograms"]


class TestErrorMapping:
    def test_unknown_set_is_404(self, client):
        with pytest.raises(HTTPError) as info:
            client.sample("missing-set")
        assert info.value.status == 404

    def test_unknown_route_is_400(self, client):
        with pytest.raises(HTTPError) as info:
            client._request("POST", "/no-such-route", {})
        assert info.value.status == 400

    def test_missing_field_is_400(self, client):
        with pytest.raises(HTTPError) as info:
            client._request("POST", "/sample", {"r": 3})
        assert info.value.status == 400
        assert "set" in str(info.value)

    def test_malformed_json_is_400(self, server):
        import urllib.request

        request = urllib.request.Request(
            server.url + "/sample", data=b"{nope", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_duplicate_add_set_is_409(self, client, workload):
        with pytest.raises(HTTPError) as info:
            client.add_set(workload[0][0], [1, 2, 3])
        assert info.value.status == 409
        assert "already exists" in str(info.value)

    def test_get_unknown_route_is_404(self, client):
        with pytest.raises(HTTPError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404


class TestServerLifecycle:
    def test_port_zero_resolves(self, server):
        assert server.port > 0
        assert server.url.startswith("http://127.0.0.1:")

    def test_smoke_cli_mode(self, capsys):
        from repro.__main__ import main

        rc = main(["serve", "--smoke", "--requests", "60",
                   "--namespace", "6000", "--set-size", "80",
                   "--num-sets", "4", "--shards", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "smoke: OK" in out


def test_in_process_client_encodes_sample_result(engine_config, workload):
    pool = ShardedEnginePool(engine_config, 1)
    service = BloomService(pool, ServiceConfig(shards=1))
    name, ids = workload[0]
    service.add_set(name, ids)
    with service:
        response = ServiceClient(service).sample(name, r=3, seed=8)
    assert sorted(response) == ["ops", "requested", "shortfall", "values"]
    assert response["requested"] == 3
    assert all(isinstance(v, int) for v in response["values"])
    assert set(response["values"]) <= set(np.asarray(ids).tolist())


class TestOccupancyWriteEndpoints:
    """The serve write surface: /insert, /retire, /compact."""

    @pytest.fixture()
    def dynamic_server(self):
        rng = np.random.default_rng(12)
        occupied = np.sort(rng.choice(8_000, 1_000,
                                      replace=False).astype(np.uint64))
        from repro.api import EngineConfig

        config = EngineConfig(namespace_size=8_000, accuracy=0.9,
                              set_size=150, tree="dynamic",
                              plan="compiled", seed=5)
        pool = ShardedEnginePool(config, 2, occupied=occupied)
        service = BloomService(pool, ServiceConfig(shards=2,
                                                   max_delay_ms=1.0))
        service.add_set("alpha", rng.choice(occupied, 150, replace=False))
        with ReproServer(service, port=0) as running:
            yield running

    def test_insert_then_retire_roundtrip(self, dynamic_server):
        http = HTTPServiceClient(dynamic_server.url)
        pool = dynamic_server.service.pool
        before = pool.engines[0].occupied.size
        fresh = [7000, 7001, 7002, 7003]
        assert http.insert_ids(fresh) == {"ok": True, "inserted": 4}
        for engine in pool.engines:
            assert engine.occupied.size == before + 4
        assert http.retire_ids(fresh) == {"ok": True, "retired": 4}
        for engine in pool.engines:
            assert engine.occupied.size == before

    def test_compact_is_bit_invisible_over_http(self, dynamic_server):
        http = HTTPServiceClient(dynamic_server.url)
        http.insert_ids([7100, 7101, 7102])
        before = http.sample("alpha", r=6, seed=3)
        response = http.compact()
        assert response["ok"] is True
        assert http.sample("alpha", r=6, seed=3) == before

    def test_retire_on_static_tree_is_400(self, client):
        with pytest.raises(HTTPError) as excinfo:
            client.retire_ids([1, 2, 3])
        assert excinfo.value.status == 400

    def test_insert_on_static_tree_is_a_noop_ok(self, client):
        assert client.insert_ids([1, 2, 3])["ok"] is True

    def test_insert_requires_ids_list(self, client):
        import json
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/insert",
            data=json.dumps({"ids": "nope"}).encode(),
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as excinfo:
            try:
                urllib.request.urlopen(request, timeout=10)
            except urllib.error.HTTPError as exc:
                raise HTTPError(exc.code,
                                json.loads(exc.read().decode())) from None
        assert excinfo.value.status == 400
