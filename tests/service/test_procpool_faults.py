"""Fault injection for the process pool: kill -9 a worker, keep serving.

The contract under a worker SIGKILL:

* requests in flight on the dead shard fail with a *clean* 503
  (:class:`WorkerDiedError` → ``ServiceOverloadedError`` → retryable),
  never a hang or a torn result;
* requests on every other shard complete normally;
* the pool detects the death, respawns the worker, and the replacement
  replays its per-worker mutation log — so post-respawn answers are
  bit-identical to pre-kill answers, volatile or durable.
"""

import time

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig, SampleSpec
from repro.service import (
    ProcessShardPool,
    ServiceOverloadedError,
    WorkerDiedError,
)
from repro.service.client import encode_result
from repro.service.http import status_for

NAMESPACE = 8_000
_RESPAWN_DEADLINE_S = 30.0


@pytest.fixture()
def volatile_pool(workload, tmp_path):
    config = EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                          set_size=150, seed=5, plan="compiled",
                          mutation="delta", tree="dynamic")
    db = BloomDB.from_config(config)
    for name, ids in workload:
        db.add_set(name, ids)
    pool = ProcessShardPool.from_engine(db, tmp_path / "engine", 2)
    pool.start()
    yield pool
    pool.close()


def probe(pool, name, seed=4242):
    return pool.submit("sample", (name,), rounds=3, replacement=False,
                       seed=seed).result(60)


def reference(pool, name, seed=4242):
    spec = SampleSpec(name, 3, False, seed=seed, key="ref")
    return encode_result(pool.leader.sample_many([spec]).ordered()[0])


def names_by_shard(pool, workload):
    """One set name per worker shard (consistent hash spreads 8 names)."""
    owners = {}
    for name, _ in workload:
        owners.setdefault(pool.shard_of(name), name)
    assert len(owners) == pool.num_workers, "workload missed a shard"
    return owners


def wait_for_respawn(pool, shard, restarts_before):
    deadline = time.monotonic() + _RESPAWN_DEADLINE_S
    while time.monotonic() < deadline:
        info = pool.workers_info()[shard]
        if info["alive"] and info["restarts"] > restarts_before:
            return info
        time.sleep(0.05)
    raise AssertionError(f"shard {shard} was not respawned in time")


class TestWorkerDeathIsA503:
    def test_worker_died_maps_to_service_overloaded_503(self):
        exc = WorkerDiedError("shard 0 worker process died")
        assert isinstance(exc, ServiceOverloadedError)
        assert status_for(exc) == 503

    def test_kill_nine_fails_inflight_cleanly_and_other_shards_complete(
            self, volatile_pool, workload):
        pool = volatile_pool
        owners = names_by_shard(pool, workload)
        victim_shard = 0
        victim_name = owners[victim_shard]
        other_name = owners[1]
        want_victim = reference(pool, victim_name)
        want_other = reference(pool, other_name)
        assert probe(pool, victim_name) == want_victim  # warm both workers
        assert probe(pool, other_name) == want_other

        restarts_before = pool.workers_info()[victim_shard]["restarts"]
        pid = pool.kill_worker(victim_shard)
        assert pid is not None

        # Hammer the dead shard until the death surfaces: every attempt
        # either fails with the retryable 503 or — post-respawn — gives
        # the bit-exact answer.  Nothing hangs, nothing is torn.
        saw_clean_failure = False
        deadline = time.monotonic() + _RESPAWN_DEADLINE_S
        while time.monotonic() < deadline and not saw_clean_failure:
            try:
                result = pool.submit("sample", (victim_name,), rounds=3,
                                     replacement=False,
                                     seed=4242).result(60)
            except WorkerDiedError:
                saw_clean_failure = True
            else:
                assert result == want_victim
        assert saw_clean_failure, "worker death never surfaced as a 503"

        # The sibling shard keeps serving throughout the outage.
        assert probe(pool, other_name) == want_other

        info = wait_for_respawn(pool, victim_shard, restarts_before)
        assert info["pid"] != pid
        assert probe(pool, victim_name) == want_victim

    def test_respawned_worker_replays_buffered_mutations(
            self, volatile_pool, workload):
        """Writes after the last promotion survive the respawn (volatile).

        The replacement worker attaches to the promoted generation and
        replays its per-worker log, so un-promoted set mutations are
        still visible — bit-identical to the leader.
        """
        pool = volatile_pool
        rng = np.random.default_rng(99)
        fresh = rng.choice(NAMESPACE, size=120, replace=False)
        pool.add_set("post-promotion", fresh.astype(np.uint64))
        want = reference(pool, "post-promotion", seed=31337)
        assert probe(pool, "post-promotion", seed=31337) == want

        shard = pool.shard_of("post-promotion")
        restarts_before = pool.workers_info()[shard]["restarts"]
        pool.kill_worker(shard)
        wait_for_respawn(pool, shard, restarts_before)
        assert probe(pool, "post-promotion", seed=31337) == want


class TestDurableDeathAndRecovery:
    def test_kill_nine_then_replay_is_bit_identical(self, tmp_path):
        config = EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                              set_size=150, seed=5, tree="dynamic")
        pool = ProcessShardPool(tmp_path / "durable", 2, durable=True,
                                config=config)
        pool.start()
        try:
            rng = np.random.default_rng(7)
            pool.add_set(
                "t", rng.choice(NAMESPACE, 150, replace=False).astype(
                    np.uint64))
            pool.insert_ids(
                rng.choice(NAMESPACE, 64, replace=False).astype(np.uint64))
            want = reference(pool, "t", seed=555)
            assert probe(pool, "t", seed=555) == want

            shard = pool.shard_of("t")
            restarts_before = pool.workers_info()[shard]["restarts"]
            pool.kill_worker(shard)
            wait_for_respawn(pool, shard, restarts_before)
            # The replacement replayed its WAL: acknowledged writes are
            # visible and the seeded answer is unchanged, bit for bit.
            assert probe(pool, "t", seed=555) == want

            # A durable checkpoint (promotion) afterwards still serves
            # the identical answer from the fresh generation.
            pool.checkpoint()
            assert probe(pool, "t", seed=555) == want
        finally:
            pool.close()
