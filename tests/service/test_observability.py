"""Observability over HTTP: ``/metrics`` and ``/trace`` on both servers.

The thread-tier :class:`ReproServer` and the asyncio
:class:`AsyncReproServer` must both expose a valid Prometheus scrape
(our own strict validator is the arbiter — the same one the
``metrics-scrape-smoke`` CI job runs) and a ``/trace`` payload whose
slowest-request ring carries per-stage spans.  Scraping must never
disturb query results: a seeded sample is bit-identical before and
after a scrape.
"""

import urllib.request

import pytest

from repro.obs.prometheus import (
    CONTENT_TYPE,
    parse_exposition,
    validate_exposition,
)
from repro.service import (
    BloomService,
    HTTPServiceClient,
    ReproServer,
    ServiceConfig,
)
from repro.service.aserver import AsyncReproServer
from repro.service.client import ServiceClient
from repro.service.pool import ShardedEnginePool


@pytest.fixture(scope="module")
def obs_config(engine_config):
    """Compiled plan + delta overlay so the deep stages are exercised."""
    from repro.api import EngineConfig

    return EngineConfig(namespace_size=engine_config.namespace_size,
                        accuracy=0.9, set_size=150, seed=5,
                        plan="compiled", mutation="delta", tree="dynamic")


@pytest.fixture(scope="module")
def server(obs_config, workload):
    pool = ShardedEnginePool(obs_config, 2)
    service = BloomService(pool, ServiceConfig(shards=2, max_delay_ms=1.0))
    for name, ids in workload:
        service.add_set(name, ids)
    with ReproServer(service, port=0) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return HTTPServiceClient(server.url)


def drive(client, workload, n=6, seed=700):
    for i in range(n):
        name = workload[i % len(workload)][0]
        client.sample(name, r=2, seed=seed + i)


def unlabeled_value(families, family):
    """The value of a family's unlabeled series."""
    return next(value for _, labels, value in families[family]["samples"]
                if not labels)


def histogram_count(families, family):
    """The unlabeled ``_count`` of a parsed histogram family."""
    return next(value for name, labels, value in families[family]["samples"]
                if name == family + "_count" and not labels)


class TestMetricsOverHTTP:
    def test_scrape_passes_the_strict_validator(self, client, workload):
        drive(client, workload)
        text = client.metrics_text()
        assert validate_exposition(text) == []

    def test_content_type_pins_the_exposition_version(self, server, client,
                                                      workload):
        drive(client, workload, n=1)
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=10) as resp:
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            text = resp.read().decode("utf-8")
        assert validate_exposition(text) == []

    def test_request_counters_monotone_across_scrapes(self, client,
                                                      workload):
        drive(client, workload)
        before = parse_exposition(client.metrics_text())
        drive(client, workload, n=5, seed=900)
        after = parse_exposition(client.metrics_text())
        for family in ("requests_total", "served_total"):
            assert (unlabeled_value(after, family)
                    >= unlabeled_value(before, family) + 5)

    def test_stage_histograms_reach_the_scrape(self, client, workload):
        """Queue/execute *and* the deep descent stage surface as families."""
        drive(client, workload)
        families = parse_exposition(client.metrics_text())
        for family in ("stage_queue_s", "stage_execute_s",
                       "stage_descent_s", "batch_size"):
            assert families[family]["type"] == "histogram"
            assert histogram_count(families, family) > 0

    def test_frontier_cache_counters_present(self, client, workload):
        drive(client, workload)
        families = parse_exposition(client.metrics_text())
        hits = unlabeled_value(families, "frontier_cache_hits_total")
        misses = unlabeled_value(families, "frontier_cache_misses_total")
        assert hits + misses > 0

    def test_gauges_present(self, client, workload):
        drive(client, workload, n=1)
        families = parse_exposition(client.metrics_text())
        assert families["uptime_seconds"]["type"] == "gauge"
        assert unlabeled_value(families, "uptime_seconds") >= 0
        assert families["queue_depth"]["type"] == "gauge"


class TestTraceOverHTTP:
    def test_trace_carries_per_stage_spans(self, client, workload):
        drive(client, workload)
        payload = client.trace()
        assert payload["slowest"], "trace ring is empty after traffic"
        slowest = payload["slowest"][0]
        assert {"id", "op", "total_s", "spans"} <= set(slowest)
        assert {"queue", "batch_assembly", "execute"} <= set(slowest["spans"])
        assert slowest["total_s"] >= max(slowest["spans"].values()) - 1e-6

    def test_trace_ring_is_slowest_first(self, client, workload):
        drive(client, workload, n=8, seed=1300)
        totals = [t["total_s"] for t in client.trace()["slowest"]]
        assert totals == sorted(totals, reverse=True)

    def test_stage_summaries_quote_quantiles(self, client, workload):
        drive(client, workload)
        stages = client.trace()["stages"]
        assert {"queue", "execute"} <= set(stages)
        queue = stages["queue"]
        assert queue["count"] > 0
        assert 0 <= queue["p50"] <= queue["p99"] <= queue["max"]


class TestScrapeDoesNotPerturbResults:
    def test_seeded_sample_identical_around_a_scrape(self, server, client,
                                                     workload):
        name = workload[3][0]
        direct = ServiceClient(server.service)
        before = direct.sample(name, r=5, seed=77)
        client.metrics_text()
        client.trace()
        client.stats()
        after = direct.sample(name, r=5, seed=77)
        assert before == after


class _LifecycleFacade(ServiceClient):
    """In-process facade delegating the lifecycle the server drives."""

    def start(self):
        self.service.start()
        return self

    def stop(self):
        self.service.stop()

    def close(self):
        self.service.close()


class TestAsyncServerEndpoints:
    @pytest.fixture(scope="class")
    def aserver(self, obs_config, workload):
        pool = ShardedEnginePool(obs_config, 2)
        service = BloomService(pool,
                               ServiceConfig(shards=2, max_delay_ms=1.0))
        for name, ids in workload:
            service.add_set(name, ids)
        facade = _LifecycleFacade(service)
        with AsyncReproServer(facade, port=0) as running:
            yield running

    def test_async_metrics_scrape_valid(self, aserver, workload):
        client = HTTPServiceClient(aserver.url)
        drive(client, workload, n=4, seed=2100)
        with urllib.request.urlopen(aserver.url + "/metrics",
                                    timeout=10) as resp:
            assert resp.headers["Content-Type"] == CONTENT_TYPE
            text = resp.read().decode("utf-8")
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        assert unlabeled_value(families, "served_total") >= 4

    def test_async_trace_route(self, aserver, workload):
        client = HTTPServiceClient(aserver.url)
        drive(client, workload, n=2, seed=2300)
        payload = client.trace()
        assert payload["slowest"]
        assert "queue" in payload["slowest"][0]["spans"]
