"""Blob container integrity: structural validation and CRC32 checksums."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.mmapio import (
    CHECKSUM_ALGORITHM,
    MAGIC,
    CorruptBlobError,
    checksum,
    read_blob,
    read_blob_meta,
    write_blob,
)


def _sample_arrays():
    return {
        "a": np.arange(100, dtype=np.uint64),
        "b": np.linspace(0, 1, 33, dtype=np.float32),
        "empty": np.empty(0, dtype=np.int32),
    }


def test_roundtrip_records_checksums(tmp_path):
    path = tmp_path / "blob.bst"
    arrays = _sample_arrays()
    write_blob(path, {"kind": "test", "wal_epoch": 7}, arrays)

    meta, loaded = read_blob(path)
    assert meta == {"kind": "test", "wal_epoch": 7}
    for name, array in arrays.items():
        assert np.array_equal(loaded[name], array)

    # The header records the algorithm and a CRC32 per segment.
    with open(path, "rb") as fh:
        fh.seek(len(MAGIC))
        header_len = int.from_bytes(fh.read(8), "little")
        header = json.loads(fh.read(header_len))
    assert header["checksum"] == CHECKSUM_ALGORITHM
    for entry in header["arrays"]:
        assert entry["crc32"] == checksum(arrays[entry["name"]].tobytes())


def test_read_blob_meta_is_header_only(tmp_path):
    path = tmp_path / "blob.bst"
    write_blob(path, {"wal_epoch": 41}, _sample_arrays())
    assert read_blob_meta(path)["wal_epoch"] == 41


def test_truncated_file_fails_structural_validation(tmp_path):
    path = tmp_path / "blob.bst"
    write_blob(path, {}, _sample_arrays())
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(size - 64)
    with pytest.raises(CorruptBlobError, match="torn write|beyond file size"):
        read_blob(path)
    with pytest.raises(CorruptBlobError):
        read_blob_meta(path)


def test_bad_magic_raises_value_error_compatible(tmp_path):
    path = tmp_path / "blob.bst"
    path.write_bytes(b"not a blob at all, definitely")
    with pytest.raises(ValueError, match="bad magic"):
        read_blob(path)


def test_verify_catches_flipped_byte(tmp_path):
    path = tmp_path / "blob.bst"
    arrays = _sample_arrays()
    write_blob(path, {}, arrays)
    # Flip one byte inside the last segment's data region.
    with open(path, "rb") as fh:
        fh.seek(len(MAGIC))
        header_len = int.from_bytes(fh.read(8), "little")
        header = json.loads(fh.read(header_len))
    target = next(e for e in header["arrays"] if e["name"] == "a")
    with open(path, "r+b") as fh:
        fh.seek(target["offset"] + 8)
        byte = fh.read(1)
        fh.seek(target["offset"] + 8)
        fh.write(bytes([byte[0] ^ 0xFF]))

    # Structural validation alone does not read the bytes...
    meta, loaded = read_blob(path)
    assert loaded["a"].shape == (100,)
    # ...but verification does.
    with pytest.raises(CorruptBlobError, match="CRC32"):
        read_blob(path, mmap=False, verify=True)


def test_zero_length_final_segment_is_covered(tmp_path):
    """An empty trailing array must not leave its offset past EOF."""
    path = tmp_path / "blob.bst"
    write_blob(path, {"n": 0}, {"only": np.empty(0, dtype=np.uint64)})
    meta, loaded = read_blob(path)
    assert meta == {"n": 0}
    assert loaded["only"].size == 0
    read_blob(path, mmap=False, verify=True)
