"""Tests for BloomSampleTree reconstruction (Section 6)."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.reconstruct import BSTReconstructor


class TestExhaustive:
    def test_equals_brute_force(self, small_tree, query_filter):
        """Exhaustive reconstruction returns exactly S u S(B)."""
        result = BSTReconstructor(small_tree, exhaustive=True).reconstruct(
            query_filter)
        namespace = np.arange(small_tree.namespace_size, dtype=np.uint64)
        brute = namespace[query_filter.contains_many(namespace)]
        np.testing.assert_array_equal(result.elements, brute)

    def test_superset_of_true_set(self, small_tree, query_filter, secret_set):
        result = BSTReconstructor(small_tree, exhaustive=True).reconstruct(
            query_filter)
        assert np.isin(secret_set, result.elements).all()

    def test_sorted_unique_output(self, small_tree, query_filter):
        result = BSTReconstructor(small_tree, exhaustive=True).reconstruct(
            query_filter)
        elements = result.elements
        assert (np.diff(elements.astype(np.int64)) > 0).all()

    def test_membership_cost_is_namespace(self, small_tree, query_filter):
        result = BSTReconstructor(small_tree, exhaustive=True).reconstruct(
            query_filter)
        assert result.ops.memberships == small_tree.namespace_size
        assert result.ops.intersections == 0


class TestThresholded:
    def test_high_recall_on_uniform_set(self, small_tree, query_filter,
                                        secret_set):
        """Thresholded pruning recovers most of a uniform set.

        Exact recovery is only guaranteed by ``exhaustive=True``; the
        estimator-guided variant can drop elements whose per-subtree
        signal is below the estimator noise (see DESIGN.md).
        """
        result = BSTReconstructor(small_tree).reconstruct(query_filter)
        found = np.isin(secret_set, result.elements).mean()
        assert found >= 0.75

    def test_full_recall_on_clustered_set(self, small_tree, small_family):
        """Dense runs sit far above the noise floor: nothing is missed."""
        secret = np.arange(512, 768, dtype=np.uint64)  # two full leaves
        query = BloomFilter.from_items(secret, small_family)
        result = BSTReconstructor(small_tree).reconstruct(query)
        assert np.isin(secret, result.elements).all()

    def test_prunes_saves_memberships(self, small_tree, small_family):
        # A tightly clustered set: most subtrees are prunable.
        secret = np.arange(100, 150, dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        result = BSTReconstructor(small_tree).reconstruct(query)
        assert result.ops.memberships < small_tree.namespace_size / 2
        assert np.isin(secret, result.elements).all()

    def test_empty_filter_reconstructs_empty(self, small_tree, small_family):
        result = BSTReconstructor(small_tree).reconstruct(
            BloomFilter(small_family))
        assert result.size == 0
        assert result.elements.dtype == np.uint64

    def test_ops_accounting(self, small_tree, query_filter):
        result = BSTReconstructor(small_tree).reconstruct(query_filter)
        assert result.ops.intersections == result.ops.nodes_visited
        assert result.ops.memberships > 0

    def test_threshold_knob_monotone(self, small_tree, query_filter):
        """Higher thresholds can only prune more (fewer memberships)."""
        low = BSTReconstructor(small_tree, empty_threshold=1e-9).reconstruct(
            query_filter)
        high = BSTReconstructor(small_tree, empty_threshold=5.0).reconstruct(
            query_filter)
        assert high.ops.memberships <= low.ops.memberships
        assert high.size <= low.size

    def test_incompatible_query_rejected(self, small_tree):
        from repro.core.hashing import create_family
        other = create_family("murmur3", 3, small_tree.family.m, seed=99)
        with pytest.raises(ValueError):
            BSTReconstructor(small_tree).reconstruct(BloomFilter(other))


class TestAgainstBaselines:
    def test_matches_dictionary_attack(self, small_tree, query_filter):
        from repro.baselines.dictionary_attack import DictionaryAttack
        bst = BSTReconstructor(small_tree, exhaustive=True).reconstruct(
            query_filter)
        da_elements, __ = DictionaryAttack(
            small_tree.namespace_size).reconstruct(query_filter)
        np.testing.assert_array_equal(bst.elements, np.sort(da_elements))

    def test_matches_hashinvert(self, simple_tree, simple_query_filter):
        from repro.baselines.hashinvert import HashInvert
        bst = BSTReconstructor(simple_tree, exhaustive=True).reconstruct(
            simple_query_filter)
        hi_elements, __ = HashInvert(
            simple_tree.namespace_size).reconstruct(simple_query_filter)
        np.testing.assert_array_equal(bst.elements, np.sort(hi_elements))
