"""Tests for the Bloom filter."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.hashing import create_family

M = 8_192
NAMESPACE = 4_096
K = 3


@pytest.fixture(scope="module")
def family():
    return create_family("murmur3", K, M, namespace_size=NAMESPACE, seed=7)


@pytest.fixture(scope="module")
def other_family():
    return create_family("murmur3", K, M, namespace_size=NAMESPACE, seed=8)


class TestMembership:
    def test_empty_filter_contains_nothing(self, family):
        bloom = BloomFilter(family)
        assert bloom.is_empty()
        assert 0 not in bloom
        assert not bloom.contains_many(np.arange(50, dtype=np.uint64)).any()

    def test_no_false_negatives(self, family):
        rng = np.random.default_rng(1)
        items = rng.choice(NAMESPACE, size=300, replace=False).astype(np.uint64)
        bloom = BloomFilter.from_items(items, family)
        assert bloom.contains_many(items).all()
        for x in items[:20].tolist():
            assert int(x) in bloom

    def test_scalar_matches_batch(self, family):
        rng = np.random.default_rng(2)
        items = rng.choice(NAMESPACE, size=100, replace=False).astype(np.uint64)
        bloom = BloomFilter.from_items(items, family)
        probes = np.arange(0, 500, dtype=np.uint64)
        batch = bloom.contains_many(probes)
        for x, hit in zip(probes.tolist(), batch.tolist()):
            assert (int(x) in bloom) == hit

    def test_false_positive_rate_near_model(self, family):
        rng = np.random.default_rng(3)
        n = 200
        items = rng.choice(NAMESPACE // 2, size=n, replace=False).astype(np.uint64)
        bloom = BloomFilter.from_items(items, family)
        outsiders = np.arange(NAMESPACE // 2, NAMESPACE, dtype=np.uint64)
        observed = bloom.contains_many(outsiders).mean()
        model = bloom.expected_fpp(n)
        assert observed == pytest.approx(model, abs=0.02)

    def test_add_scalar(self, family):
        bloom = BloomFilter(family)
        bloom.add(42)
        assert 42 in bloom
        assert bloom.approximate_count == 1

    def test_empty_batch_noop(self, family):
        bloom = BloomFilter(family)
        bloom.add_many(np.array([], dtype=np.uint64))
        assert bloom.is_empty()
        assert bloom.contains_many(np.array([], dtype=np.uint64)).size == 0


class TestSetAlgebra:
    def test_union_equals_filter_of_union(self, family):
        a_items = np.arange(0, 100, dtype=np.uint64)
        b_items = np.arange(50, 150, dtype=np.uint64)
        a = BloomFilter.from_items(a_items, family)
        b = BloomFilter.from_items(b_items, family)
        union = a.union(b)
        direct = BloomFilter.from_items(np.arange(0, 150, dtype=np.uint64),
                                        family)
        assert union == direct  # exact identity from Section 3.1

    def test_union_update_in_place(self, family):
        a = BloomFilter.from_items(np.arange(10, dtype=np.uint64), family)
        b = BloomFilter.from_items(np.arange(10, 20, dtype=np.uint64), family)
        expected = a.union(b)
        a.union_update(b)
        assert a == expected

    def test_intersection_superset_of_true_intersection(self, family):
        a = BloomFilter.from_items(np.arange(0, 100, dtype=np.uint64), family)
        b = BloomFilter.from_items(np.arange(50, 150, dtype=np.uint64), family)
        inter = a.intersection(b)
        true_inter = BloomFilter.from_items(np.arange(50, 100, dtype=np.uint64),
                                            family)
        # Every bit of B(A n B) is set in B(A) & B(B).
        assert (inter.bits.words & true_inter.bits.words
                == true_inter.bits.words).all()

    def test_incompatible_filters_rejected(self, family, other_family):
        a = BloomFilter(family)
        b = BloomFilter(other_family)
        with pytest.raises(ValueError):
            a.union(b)
        with pytest.raises(ValueError):
            a.intersection(b)
        with pytest.raises(TypeError):
            a.union(object())

    def test_copy_independent(self, family):
        a = BloomFilter.from_items(np.arange(10, dtype=np.uint64), family)
        b = a.copy()
        b.add(3_000)
        assert a != b


class TestEstimation:
    def test_cardinality_estimate_close(self, family):
        rng = np.random.default_rng(5)
        for n in (10, 100, 400):
            items = rng.choice(NAMESPACE, size=n, replace=False).astype(np.uint64)
            bloom = BloomFilter.from_items(items, family)
            assert bloom.estimate_cardinality() == pytest.approx(n, rel=0.15)

    def test_intersection_estimate_tracks_overlap(self, family):
        base = np.arange(0, 300, dtype=np.uint64)
        a = BloomFilter.from_items(base, family)
        estimates = []
        for overlap in (0, 100, 200, 300):
            other = np.arange(300 - overlap, 600 - overlap, dtype=np.uint64)
            b = BloomFilter.from_items(other, family)
            estimates.append(a.estimate_intersection(b))
        # Monotone in the true overlap, and roughly calibrated.
        assert estimates == sorted(estimates)
        assert estimates[-1] == pytest.approx(300, rel=0.2)
        assert estimates[0] < 30

    def test_fill_ratio(self, family):
        bloom = BloomFilter.from_items(np.arange(100, dtype=np.uint64), family)
        assert 0 < bloom.fill_ratio() < 0.1
        assert bloom.count_ones() == bloom.bits.count_ones()

    def test_mismatched_bits_rejected(self, family):
        from repro.core.bitvector import BitVector
        with pytest.raises(ValueError):
            BloomFilter(family, BitVector(M + 1))
