"""Tests for the three hash families, including weak inversion."""

import hashlib

import numpy as np
import pytest

from repro.core.hashing import (
    MD5HashFamily,
    Murmur3HashFamily,
    NotInvertibleError,
    SimpleHashFamily,
    create_family,
    murmur3_32,
)

M = 1_024
NAMESPACE = 10_000


def reference_murmur3_32(key: bytes, seed: int) -> int:
    """Straight-line reference MurmurHash3 x86_32 for cross-checking."""
    c1, c2 = 0xCC9E2D51, 0x1B873593
    mask = 0xFFFFFFFF
    h = seed & mask
    assert len(key) % 4 == 0
    for i in range(0, len(key), 4):
        k = int.from_bytes(key[i:i + 4], "little")
        k = (k * c1) & mask
        k = ((k << 15) | (k >> 17)) & mask
        k = (k * c2) & mask
        h ^= k
        h = ((h << 13) | (h >> 19)) & mask
        h = (h * 5 + 0xE6546B64) & mask
    h ^= len(key)
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & mask
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & mask
    h ^= h >> 16
    return h


class TestMurmurReference:
    @pytest.mark.parametrize("seed", [0, 1, 0xDEADBEEF])
    def test_matches_reference(self, seed):
        xs = np.array([0, 1, 2, 12345, 2 ** 40 + 17, 2 ** 63], dtype=np.uint64)
        ours = murmur3_32(xs, seed)
        for x, h in zip(xs.tolist(), ours.tolist()):
            expected = reference_murmur3_32(int(x).to_bytes(8, "little"), seed)
            assert h == expected, (x, seed)


class TestFamilyBasics:
    @pytest.mark.parametrize("name", ["simple", "murmur3", "md5"])
    def test_positions_in_range(self, name):
        family = create_family(name, 3, M, namespace_size=NAMESPACE, seed=1)
        xs = np.arange(0, 200, dtype=np.uint64)
        positions = family.positions_many(xs)
        assert positions.shape == (200, 3)
        assert positions.max() < M

    @pytest.mark.parametrize("name", ["simple", "murmur3", "md5"])
    def test_scalar_matches_batch(self, name):
        family = create_family(name, 3, M, namespace_size=NAMESPACE, seed=1)
        xs = np.array([7, 99, 12345 % NAMESPACE], dtype=np.uint64)
        batch = family.positions_many(xs)
        for i, x in enumerate(xs.tolist()):
            np.testing.assert_array_equal(family.positions(int(x)), batch[i])

    @pytest.mark.parametrize("name", ["simple", "murmur3", "md5"])
    def test_deterministic_across_instances(self, name):
        a = create_family(name, 3, M, namespace_size=NAMESPACE, seed=5)
        b = create_family(name, 3, M, namespace_size=NAMESPACE, seed=5)
        xs = np.arange(50, dtype=np.uint64)
        np.testing.assert_array_equal(a.positions_many(xs),
                                      b.positions_many(xs))
        assert a.is_compatible_with(b)

    @pytest.mark.parametrize("name", ["simple", "murmur3", "md5"])
    def test_seeds_differ(self, name):
        a = create_family(name, 3, M, namespace_size=NAMESPACE, seed=1)
        b = create_family(name, 3, M, namespace_size=NAMESPACE, seed=2)
        xs = np.arange(50, dtype=np.uint64)
        assert not np.array_equal(a.positions_many(xs), b.positions_many(xs))
        assert not a.is_compatible_with(b)

    def test_with_range_preserves_functions(self):
        family = create_family("simple", 3, M, namespace_size=NAMESPACE, seed=3)
        wider = family.with_range(4 * M)
        assert wider.m == 4 * M
        assert wider.k == family.k
        # Same coefficients: re-narrowing gives back an equal family.
        again = wider.with_range(M)
        assert family.is_compatible_with(again)

    def test_functions_are_distinct(self):
        family = create_family("murmur3", 3, M, namespace_size=NAMESPACE,
                               seed=0)
        xs = np.arange(100, dtype=np.uint64)
        pos = family.positions_many(xs)
        assert not np.array_equal(pos[:, 0], pos[:, 1])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            create_family("simple", 0, M, namespace_size=NAMESPACE)
        with pytest.raises(ValueError):
            create_family("murmur3", 3, 0)
        with pytest.raises(ValueError):
            create_family("nope", 3, M)
        with pytest.raises(ValueError):
            create_family("simple", 3, M)  # namespace_size missing


class TestSimpleInversion:
    def test_inversion_is_exact_preimage(self):
        family = SimpleHashFamily(3, M, NAMESPACE, seed=11)
        xs = np.arange(NAMESPACE, dtype=np.uint64)
        positions = family.positions_many(xs)
        for i in range(family.k):
            for target in [0, 1, M // 2, M - 1]:
                expected = np.flatnonzero(positions[:, i] == target)
                got = family.invert(i, target, NAMESPACE)
                np.testing.assert_array_equal(got, expected.astype(np.uint64))

    def test_inversion_respects_namespace_bound(self):
        family = SimpleHashFamily(2, 64, 1000, seed=2)
        preimage = family.invert(0, 10, 100)
        assert (preimage < 100).all()

    def test_inversion_bounds_checked(self):
        family = SimpleHashFamily(2, 64, 1000, seed=2)
        with pytest.raises(IndexError):
            family.invert(2, 0, 1000)
        with pytest.raises(IndexError):
            family.invert(0, 64, 1000)

    def test_invertible_flags(self):
        assert SimpleHashFamily(2, 64, 100).invertible
        assert not Murmur3HashFamily(2, 64).invertible
        assert not MD5HashFamily(2, 64).invertible

    def test_one_way_families_raise(self):
        with pytest.raises(NotInvertibleError):
            Murmur3HashFamily(2, 64).invert(0, 1, 100)
        with pytest.raises(NotInvertibleError):
            MD5HashFamily(2, 64).invert(0, 1, 100)

    def test_bigint_path_matches_small(self):
        """The object-dtype fallback must agree with the uint64 fast path."""
        family = SimpleHashFamily(3, M, NAMESPACE, seed=4)
        xs = np.arange(0, 500, dtype=np.uint64)
        fast = family.positions_many(xs)
        slow = family._positions_many_bigint(xs)
        np.testing.assert_array_equal(fast, slow)


class TestMD5:
    def test_md5_uses_real_digests(self):
        family = MD5HashFamily(2, M, seed=0)
        x = 12345
        positions = family.positions(x)
        for i in range(2):
            salt = (0 + (i << 8)).to_bytes(8, "little")
            digest = hashlib.md5(salt + x.to_bytes(8, "little")).digest()
            expected = int.from_bytes(digest[:4], "little") % M
            assert positions[i] == expected

    def test_md5_supports_many_functions(self):
        family = MD5HashFamily(6, M, seed=1)
        pos = family.positions(99)
        assert len(pos) == 6
        assert len(set(pos.tolist())) > 1
