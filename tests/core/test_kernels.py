"""Unit tests for the vectorized kernels (repro.core.kernels)."""

import hashlib

import numpy as np
import pytest

from repro.core import kernels
from repro.core.bloom import BloomFilter
from repro.core.hashing import create_family
from repro.core.tree import BloomSampleTree


class TestMD5Kernel:
    def test_matches_hashlib_first_word(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 1 << 64, size=300, dtype=np.uint64)
        salt = (9 + (1 << 8)).to_bytes(8, "little")
        got = kernels.md5_first_word(xs, salt)
        expected = np.array([
            int.from_bytes(
                hashlib.md5(salt + int(x).to_bytes(8, "little")).digest()[:4],
                "little")
            for x in xs
        ], dtype=np.uint32)
        assert np.array_equal(got, expected)

    def test_positions_vectorized_equals_scalar(self):
        salts = [(3 + (i << 8)).to_bytes(8, "little") for i in range(4)]
        # Straddle the vector/scalar cutover in both directions.
        for n in (5, kernels._MD5_VECTOR_MIN + 7):
            xs = np.arange(n, dtype=np.uint64) * np.uint64(2654435761)
            vec = kernels.md5_positions(xs, salts, 997)
            scal = kernels.md5_positions_scalar(xs, salts, 997)
            assert np.array_equal(vec, scal)

    def test_rejects_bad_salt_length(self):
        with pytest.raises(ValueError):
            kernels.md5_first_word(np.arange(3, dtype=np.uint64), b"short")


class TestSimpleKernel:
    def test_mulmod_shift_add_exact(self):
        p = (1 << 62) + 135
        rng = np.random.default_rng(1)
        xs = rng.integers(0, p, size=200, dtype=np.uint64)
        for a in (1, 3, 12345678901234567, p - 1):
            got = kernels._mulmod_shift_add(a, xs, p)
            expected = np.array([(a * int(x)) % p for x in xs],
                                dtype=np.uint64)
            assert np.array_equal(got, expected)

    @pytest.mark.parametrize("p", [
        101,                # small-prime uint64 regime
        (1 << 32) + 15,     # shift-and-add mulmod regime
        (1 << 63) + 29,     # object-dtype (Python int) regime
    ])
    def test_all_regimes_match_scalar(self, p):
        rng = np.random.default_rng(2)
        a = np.array([5, p - 2, 123], dtype=object)
        b = np.array([0, 17, p - 1], dtype=object)
        xs = rng.integers(0, min(p, 1 << 63), size=200, dtype=np.uint64)
        got = kernels.simple_positions(xs, a, b, p, 97)
        expected = kernels.simple_positions_scalar(xs, a, b, p, 97)
        assert np.array_equal(got, expected)


class TestMurmur3Kernel:
    def test_vectorized_equals_scalar_loop(self):
        seeds = np.array([0, 1, 0xDEADBEEF], dtype=np.uint64)
        xs = np.arange(100, dtype=np.uint64) * np.uint64(97)
        vec = kernels.murmur3_positions(xs, seeds, 4096)
        scal = kernels.murmur3_positions_scalar(xs, seeds, 4096)
        assert np.array_equal(vec, scal)


class TestKernelMode:
    def test_default_is_vectorized(self):
        assert kernels.kernel_mode() == kernels.VECTORIZED

    def test_context_manager_restores(self):
        with kernels.scalar_kernels():
            assert kernels.kernel_mode() == kernels.SCALAR
            with kernels.scalar_kernels():
                assert kernels.kernel_mode() == kernels.SCALAR
            assert kernels.kernel_mode() == kernels.SCALAR
        assert kernels.kernel_mode() == kernels.VECTORIZED

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with kernels.scalar_kernels():
                raise RuntimeError("boom")
        assert kernels.kernel_mode() == kernels.VECTORIZED

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            kernels.set_kernel_mode("simd")

    def test_scalar_block_does_not_leak_into_other_threads(self):
        """Regression: _MODE was a process-global, so a scalar_kernels()
        block in one thread flipped the kernels under concurrent serving
        threads.  The mode is context-local now."""
        import threading

        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def scalar_holder():
            with kernels.scalar_kernels():
                entered.set()
                release.wait(timeout=5)

        def observer():
            entered.wait(timeout=5)
            seen["mode"] = kernels.kernel_mode()
            release.set()

        threads = [threading.Thread(target=scalar_holder),
                   threading.Thread(target=observer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert seen["mode"] == kernels.VECTORIZED
        assert kernels.kernel_mode() == kernels.VECTORIZED

    def test_set_kernel_mode_is_thread_local(self):
        import threading

        kernels.set_kernel_mode(kernels.SCALAR)
        try:
            seen = {}

            def probe():
                seen["mode"] = kernels.kernel_mode()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=10)
            # A fresh thread starts from the default, not the caller's
            # selection.
            assert seen["mode"] == kernels.VECTORIZED
            assert kernels.kernel_mode() == kernels.SCALAR
        finally:
            kernels.set_kernel_mode(kernels.VECTORIZED)


class TestMembershipKernels:
    @pytest.fixture()
    def family(self):
        return create_family("murmur3", 3, 2048, seed=5)

    def test_membership_matches_contains_many(self, family):
        items = np.arange(0, 100, 3, dtype=np.uint64)
        bloom = BloomFilter.from_items(items, family)
        candidates = np.arange(120, dtype=np.uint64)
        positions = family.positions_many(candidates)
        got = kernels.membership(bloom.bits.words, positions)
        assert np.array_equal(got, bloom.contains_many(candidates))

    def test_membership_many_rows_match_per_filter(self, family):
        rng = np.random.default_rng(3)
        blooms = [
            BloomFilter.from_items(
                rng.choice(500, size=40, replace=False).astype(np.uint64),
                family)
            for _ in range(5)
        ]
        candidates = np.arange(500, dtype=np.uint64)
        positions = family.positions_many(candidates)
        stack = np.stack([bloom.bits.words for bloom in blooms])
        matrix = kernels.membership_many(stack, positions)
        assert matrix.shape == (5, 500)
        for row, bloom in zip(matrix, blooms):
            assert np.array_equal(row, bloom.contains_many(candidates))

    def test_empty_candidates(self, family):
        bloom = BloomFilter(family)
        empty = np.empty((0, family.k), dtype=np.uint64)
        assert kernels.membership(bloom.bits.words, empty).shape == (0,)
        stack = bloom.bits.words[None, :]
        assert kernels.membership_many(stack, empty).shape == (1, 0)

    def test_intersection_counts(self, family):
        rng = np.random.default_rng(4)
        other = BloomFilter.from_items(
            rng.choice(500, size=60, replace=False).astype(np.uint64), family)
        blooms = [
            BloomFilter.from_items(
                rng.choice(500, size=30, replace=False).astype(np.uint64),
                family)
            for _ in range(4)
        ]
        stack = np.stack([bloom.bits.words for bloom in blooms])
        counts = kernels.intersection_counts(stack, other.bits.words)
        expected = [bloom.bits.intersection_count(other.bits)
                    for bloom in blooms]
        assert counts.tolist() == expected


class TestPositionCache:
    def test_positions_computed_once_per_node(self, monkeypatch):
        family = create_family("murmur3", 3, 2048, seed=1)
        tree = BloomSampleTree.build(256, 3, family)
        cache = kernels.PositionCache(tree)
        calls = {"n": 0}
        original = family.positions_many

        def counting(xs):
            calls["n"] += 1
            return original(xs)

        monkeypatch.setattr(family, "positions_many", counting)
        leaf = next(iter(tree.leaves()))
        first = cache.positions(leaf)
        second = cache.positions(leaf)
        assert first is second
        assert calls["n"] == 1

    def test_ones_matches_filter_popcount(self):
        family = create_family("murmur3", 3, 2048, seed=1)
        tree = BloomSampleTree.build(256, 3, family)
        cache = kernels.PositionCache(tree)
        for node in tree.iter_nodes():
            assert cache.ones(node) == node.bloom.count_ones()

    def test_estimate_memo_is_lru_bounded(self):
        family = create_family("murmur3", 3, 2048, seed=1)
        tree = BloomSampleTree.build(256, 3, family)
        cache = kernels.PositionCache(tree, max_estimates=4)
        queries = [object() for _ in range(6)]
        node = tree.root
        for i, query in enumerate(queries):
            cache.set_child_estimate(query, node, float(i))
        # Only the 4 most recent survive.
        assert cache.child_estimate(queries[0], node) is None
        assert cache.child_estimate(queries[1], node) is None
        assert cache.child_estimate(queries[5], node) == 5.0
        # A hit refreshes recency: inserting two more now evicts the
        # oldest *untouched* entries, not the refreshed one.
        assert cache.child_estimate(queries[2], node) == 2.0
        cache.set_child_estimate(object(), node, 10.0)
        cache.set_child_estimate(object(), node, 11.0)
        assert cache.child_estimate(queries[2], node) == 2.0
        assert cache.child_estimate(queries[3], node) is None

    def test_estimate_cap_must_be_positive(self):
        family = create_family("murmur3", 3, 2048, seed=1)
        tree = BloomSampleTree.build(256, 3, family)
        with pytest.raises(ValueError):
            kernels.PositionCache(tree, max_estimates=0)
