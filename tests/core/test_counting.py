"""Tests for the counting Bloom filter (deletion substrate)."""

import numpy as np
import pytest

from repro.core.counting import (
    CountingBloomFilter,
    CountingOverflowError,
    NotStoredError,
)
from repro.core.hashing import create_family

M = 2_048


@pytest.fixture()
def family():
    return create_family("murmur3", 3, M, seed=13)


class TestAddRemove:
    def test_membership_after_add(self, family):
        cbf = CountingBloomFilter(family)
        cbf.add(42)
        assert 42 in cbf
        assert cbf.count_nonzero() > 0

    def test_remove_restores_empty(self, family):
        cbf = CountingBloomFilter(family)
        cbf.add(42)
        cbf.remove(42)
        assert cbf.count_nonzero() == 0
        assert 42 not in cbf

    def test_remove_keeps_other_elements(self, family):
        cbf = CountingBloomFilter(family)
        items = np.arange(100, dtype=np.uint64)
        cbf.add_many(items)
        cbf.remove(50)
        survivors = np.delete(items, 50)
        assert cbf.contains_many(survivors).all()

    def test_batch_roundtrip_matches_plain_filter(self, family):
        from repro.core.bloom import BloomFilter
        rng = np.random.default_rng(0)
        items = rng.choice(10_000, size=300, replace=False).astype(np.uint64)
        cbf = CountingBloomFilter(family)
        cbf.add_many(items)
        assert cbf.bloom == BloomFilter.from_items(items, family)
        # Remove half; the view must equal a fresh filter of the rest.
        cbf.remove_many(items[:150])
        assert cbf.bloom == BloomFilter.from_items(items[150:], family)

    def test_duplicate_insertions_counted(self, family):
        cbf = CountingBloomFilter(family)
        cbf.add(7)
        cbf.add(7)
        cbf.remove(7)
        assert 7 in cbf  # one copy remains
        cbf.remove(7)
        assert 7 not in cbf

    def test_remove_absent_raises(self, family):
        cbf = CountingBloomFilter(family)
        cbf.add(1)
        with pytest.raises(NotStoredError):
            cbf.remove(999)

    def test_self_colliding_element(self, family):
        """An element whose hashes collide must survive add+remove."""
        # Find an element with a self-collision (k positions, < k unique).
        for x in range(50_000):
            if len(set(family.positions(x).tolist())) < family.k:
                cbf = CountingBloomFilter(family)
                cbf.add(x)
                cbf.remove(x)
                assert cbf.count_nonzero() == 0
                return
        pytest.skip("no self-colliding element found in range")


class TestSaturation:
    def test_saturated_counter_blocks_removal(self, family):
        cbf = CountingBloomFilter(family)
        maximum = np.iinfo(CountingBloomFilter.COUNTER_DTYPE).max
        # Saturate one of element 5's counters artificially.
        position = int(family.positions(5)[0])
        cbf.counts[position] = maximum
        cbf.add(5)
        with pytest.raises(CountingOverflowError):
            cbf.remove(5)

    def test_saturation_tracked(self, family):
        cbf = CountingBloomFilter(family)
        assert cbf.saturated_counters == 0


class TestViews:
    def test_to_bloom_snapshot_independent(self, family):
        cbf = CountingBloomFilter(family)
        cbf.add(3)
        snapshot = cbf.to_bloom()
        cbf.remove(3)
        assert 3 in snapshot
        assert 3 not in cbf

    def test_view_usable_with_estimators(self, family):
        from repro.core.bloom import BloomFilter
        cbf = CountingBloomFilter(family)
        cbf.add_many(np.arange(50, dtype=np.uint64))
        other = BloomFilter.from_items(np.arange(25, 75, dtype=np.uint64),
                                       family)
        estimate = cbf.bloom.estimate_intersection(other)
        assert estimate == pytest.approx(25, abs=15)

    def test_memory_accounting(self, family):
        cbf = CountingBloomFilter(family)
        assert cbf.nbytes == cbf.counts.nbytes + cbf.bloom.nbytes
        assert cbf.m == M
        assert cbf.k == 3


class TestBatchedRows:
    """add_rows / remove_rows: the hash-once batched substrate."""

    def test_add_rows_matches_add_loop(self, small_family):
        import numpy as np

        from repro.core.counting import CountingBloomFilter

        xs = np.arange(0, 900, 3, dtype=np.uint64)
        batched = CountingBloomFilter(small_family)
        batched.add_rows(small_family.positions_many(xs))
        looped = CountingBloomFilter(small_family)
        for x in xs.tolist():
            looped.add(int(x))
        assert np.array_equal(batched.counts, looped.counts)
        assert np.array_equal(batched.bloom.bits.words,
                              looped.bloom.bits.words)

    def test_remove_rows_matches_remove_loop(self, small_family):
        import numpy as np

        from repro.core.counting import CountingBloomFilter

        xs = np.arange(0, 600, 2, dtype=np.uint64)
        batched = CountingBloomFilter(small_family)
        looped = CountingBloomFilter(small_family)
        for cbf in (batched, looped):
            cbf.add_many(xs)
        victims = xs[::3]
        batched.remove_rows(small_family.positions_many(victims))
        for x in victims.tolist():
            looped.remove(int(x))
        assert np.array_equal(batched.counts, looped.counts)
        assert np.array_equal(batched.bloom.bits.words,
                              looped.bloom.bits.words)

    def test_remove_rows_is_all_or_nothing(self, small_family):
        import numpy as np
        import pytest

        from repro.core.counting import CountingBloomFilter, NotStoredError

        cbf = CountingBloomFilter(small_family)
        cbf.add_many(np.arange(50, dtype=np.uint64))
        before = cbf.counts.copy()
        bad = np.array([1, 2, 3_000], dtype=np.uint64)  # 3000 never added
        with pytest.raises(NotStoredError):
            cbf.remove_rows(small_family.positions_many(bad))
        assert np.array_equal(cbf.counts, before)
