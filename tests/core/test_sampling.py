"""Tests for BSTSample (Algorithm 1) and the multi-sample extension."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.sampling import BSTSampler, ExactUniformSampler
from tests.conftest import SMALL_NAMESPACE


class TestSingleSample:
    def test_sample_is_query_positive(self, small_tree, query_filter,
                                      secret_set):
        sampler = BSTSampler(small_tree, rng=0)
        for __ in range(50):
            result = sampler.sample(query_filter)
            assert result.value is not None
            assert result.value in query_filter  # member of S u S(B)

    def test_sample_mostly_true_elements(self, small_tree, query_filter,
                                         secret_set):
        """With our test m the FPP is tiny: samples are true elements."""
        sampler = BSTSampler(small_tree, rng=0)
        truth = set(secret_set.tolist())
        hits = sum(sampler.sample(query_filter).value in truth
                   for __ in range(100))
        assert hits >= 98

    def test_empty_filter_yields_null(self, small_tree, small_family):
        sampler = BSTSampler(small_tree, rng=0)
        result = sampler.sample(BloomFilter(small_family))
        assert result.value is None

    def test_ops_are_counted(self, small_tree, query_filter):
        result = BSTSampler(small_tree, rng=0).sample(query_filter)
        assert result.ops.nodes_visited >= small_tree.depth + 1
        assert result.ops.intersections >= 2 * small_tree.depth
        assert result.ops.memberships >= 1

    def test_deterministic_under_seed(self, small_tree, query_filter):
        draws_a = [BSTSampler(small_tree, rng=7).sample(query_filter).value
                   for __ in range(1)]
        draws_b = [BSTSampler(small_tree, rng=7).sample(query_filter).value
                   for __ in range(1)]
        assert draws_a == draws_b

    def test_coverage_of_small_set(self, small_tree, small_family):
        """Every element of a small spread-out set is eventually sampled."""
        secret = np.array([10, 1000, 2000, 3000, 4000], dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        sampler = BSTSampler(small_tree, rng=3)
        seen = {sampler.sample(query).value for __ in range(300)}
        assert set(secret.tolist()) <= seen

    def test_singleton_set(self, small_tree, small_family):
        query = BloomFilter.from_items(np.array([137], dtype=np.uint64),
                                       small_family)
        sampler = BSTSampler(small_tree, rng=1)
        values = {sampler.sample(query).value for __ in range(20)}
        assert values == {137}

    def test_result_flags(self, small_tree, query_filter, small_family):
        ok = BSTSampler(small_tree, rng=0).sample(query_filter)
        assert ok.succeeded
        empty = BSTSampler(small_tree, rng=0).sample(BloomFilter(small_family))
        assert not empty.succeeded

    def test_invalid_descent_mode(self, small_tree):
        with pytest.raises(ValueError):
            BSTSampler(small_tree, descent="magic")

    def test_incompatible_query_rejected(self, small_tree):
        from repro.core.hashing import create_family
        other = create_family("murmur3", 3, small_tree.family.m, seed=99)
        with pytest.raises(ValueError):
            BSTSampler(small_tree).sample(BloomFilter(other))

    def test_floored_descent_also_valid(self, small_tree, query_filter):
        sampler = BSTSampler(small_tree, rng=0, descent="floored")
        for __ in range(30):
            result = sampler.sample(query_filter)
            assert result.value is None or result.value in query_filter


class TestMultiSample:
    def test_counts_and_validity(self, small_tree, query_filter, secret_set):
        sampler = BSTSampler(small_tree, rng=0)
        result = sampler.sample_many(query_filter, 40)
        assert result.requested == 40
        assert len(result.values) == 40
        truth = set(secret_set.tolist())
        assert sum(v in truth for v in result.values) >= 38

    def test_without_replacement_distinct(self, small_tree, query_filter,
                                          secret_set):
        sampler = BSTSampler(small_tree, rng=0)
        result = sampler.sample_many(query_filter, 40, replacement=False)
        assert len(result.values) == len(set(result.values))

    def test_without_replacement_exhausts_set(self, small_tree, small_family):
        secret = np.array([3, 700, 1500, 2600, 3900], dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        # Floored descent guarantees every branch stays reachable, so 64
        # no-replacement paths must flush out all five elements.
        sampler = BSTSampler(small_tree, rng=2, descent="floored")
        result = sampler.sample_many(query, 64, replacement=False)
        # Cannot produce more distinct values than exist.
        assert set(result.values) <= set(
            int(v) for v in np.arange(SMALL_NAMESPACE)
            if int(v) in query)
        assert len(result.values) == len(set(result.values))
        assert set(secret.tolist()) <= set(result.values)

    def test_one_pass_cheaper_than_repeats(self, small_tree, query_filter):
        sampler = BSTSampler(small_tree, rng=0)
        multi = sampler.sample_many(query_filter, 32)
        single_ops = 0
        for __ in range(32):
            single_ops += sampler.sample(query_filter).ops.intersections
        assert multi.ops.intersections < single_ops

    def test_empty_filter(self, small_tree, small_family):
        result = BSTSampler(small_tree, rng=0).sample_many(
            BloomFilter(small_family), 10)
        assert result.values == []
        assert result.shortfall == 10

    def test_invalid_r(self, small_tree, query_filter):
        with pytest.raises(ValueError):
            BSTSampler(small_tree).sample_many(query_filter, 0)


class TestExactUniformSampler:
    def test_samples_true_elements(self, small_tree, query_filter,
                                   secret_set):
        sampler = ExactUniformSampler(small_tree, rng=0)
        truth = set(secret_set.tolist())
        values = [sampler.sample(query_filter).value for __ in range(100)]
        assert sum(v in truth for v in values) >= 98

    def test_cache_amortises_ops(self, small_tree, query_filter):
        sampler = ExactUniformSampler(small_tree, rng=0)
        first = sampler.sample(query_filter)
        assert first.ops.memberships > 0
        second = sampler.sample(query_filter)
        assert second.ops.memberships == 0  # served from cache

    def test_clear_cache(self, small_tree, query_filter):
        sampler = ExactUniformSampler(small_tree, rng=0)
        sampler.sample(query_filter)
        sampler.clear_cache()
        assert sampler.sample(query_filter).ops.memberships > 0

    def test_exhaustive_covers_everything(self, small_tree, small_family,
                                          secret_set):
        query = BloomFilter.from_items(secret_set, small_family)
        sampler = ExactUniformSampler(small_tree, rng=0, exhaustive=True)
        seen = {sampler.sample(query).value for __ in range(3000)}
        assert set(secret_set.tolist()) <= seen

    def test_empty_filter(self, small_tree, small_family):
        sampler = ExactUniformSampler(small_tree, rng=0)
        assert sampler.sample(BloomFilter(small_family)).value is None


class TestUniformityStatistics:
    def test_uniform_within_a_leaf(self, small_tree, small_family):
        """Leaf-level sampling is exactly uniform.

        With the whole set inside one leaf the descent is deterministic,
        so the only randomness is the leaf's uniform choice — the
        chi-squared test must pass.  (Cross-leaf proportionality is only
        (1 +- eps(m))-approximate per Proposition 5.2; see DESIGN.md.)
        """
        from repro.analysis.uniformity import (chi_squared_uniformity,
                                               sample_counts)
        leaf = next(iter(small_tree.leaves()))
        secret = np.arange(leaf.lo, leaf.lo + 16, dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        sampler = BSTSampler(small_tree, rng=8)
        draws = [sampler.sample(query).value for __ in range(16 * 130)]
        counts = sample_counts(draws, secret)
        assert (counts > 0).all()
        __, p = chi_squared_uniformity(counts)
        assert p > 0.01

    def test_floored_descent_covers_sparse_set(self, small_tree,
                                               small_family):
        """Floored descent never starves an element (our extension)."""
        secret = np.array([1, 600, 1300, 2100, 2900, 3700], dtype=np.uint64)
        query = BloomFilter.from_items(secret, small_family)
        sampler = BSTSampler(small_tree, rng=9, descent="floored")
        seen = {sampler.sample(query).value for __ in range(600)}
        assert set(secret.tolist()) <= seen
