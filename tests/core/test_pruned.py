"""Tests for the Pruned-BloomSampleTree (Section 5.2)."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.pruned import PrunedBloomSampleTree
from repro.core.reconstruct import BSTReconstructor
from repro.core.sampling import BSTSampler
from tests.conftest import SMALL_DEPTH, SMALL_NAMESPACE


class TestBuild:
    def test_only_occupied_subtrees_materialised(self, small_family):
        # All ids in the first quarter of the namespace.
        occupied = np.arange(0, SMALL_NAMESPACE // 4, 8, dtype=np.uint64)
        tree = PrunedBloomSampleTree.build(
            occupied, SMALL_NAMESPACE, SMALL_DEPTH, small_family)
        full_nodes = (1 << (SMALL_DEPTH + 1)) - 1
        assert tree.num_nodes < full_nodes / 2
        for node in tree.iter_nodes():
            lo_i = np.searchsorted(occupied, node.lo, side="left")
            hi_i = np.searchsorted(occupied, node.hi, side="left")
            assert hi_i > lo_i  # every materialised node holds something

    def test_node_filters_store_only_occupied(self, sparse_pruned_tree,
                                              small_family):
        tree, occupied = sparse_pruned_tree
        for leaf in tree.leaves():
            ids = occupied[(occupied >= leaf.lo) & (occupied < leaf.hi)]
            assert leaf.bloom == BloomFilter.from_items(ids, small_family)

    def test_parent_union_of_children(self, sparse_pruned_tree):
        tree, __ = sparse_pruned_tree
        for node in tree.iter_nodes():
            if tree.is_leaf(node):
                continue
            children = [c for c in (node.left, node.right) if c is not None]
            assert children
            merged = children[0].bloom.copy()
            for child in children[1:]:
                merged.union_update(child.bloom)
            assert node.bloom == merged

    def test_duplicates_deduplicated(self, small_family):
        occupied = np.array([5, 5, 9, 9, 9], dtype=np.uint64)
        tree = PrunedBloomSampleTree.build(
            occupied, SMALL_NAMESPACE, SMALL_DEPTH, small_family)
        assert len(tree.occupied) == 2

    def test_empty_occupancy(self, small_family):
        tree = PrunedBloomSampleTree.build(
            np.array([], dtype=np.uint64), SMALL_NAMESPACE, SMALL_DEPTH,
            small_family)
        assert tree.root is None
        assert tree.num_nodes == 0
        result = BSTSampler(tree).sample(BloomFilter(small_family))
        assert result.value is None

    def test_out_of_namespace_rejected(self, small_family):
        with pytest.raises(ValueError):
            PrunedBloomSampleTree.build(
                np.array([SMALL_NAMESPACE], dtype=np.uint64),
                SMALL_NAMESPACE, SMALL_DEPTH, small_family)

    def test_memory_below_full_tree(self, sparse_pruned_tree, small_tree,
                                    small_family):
        # Uniform occupancy can touch every subtree, so only <= holds...
        tree, __ = sparse_pruned_tree
        assert tree.memory_bytes <= small_tree.memory_bytes
        # ...but clustered occupancy prunes strictly.
        clustered = np.arange(0, SMALL_NAMESPACE // 8, dtype=np.uint64)
        packed = PrunedBloomSampleTree.build(
            clustered, SMALL_NAMESPACE, SMALL_DEPTH, small_family)
        assert packed.memory_bytes < small_tree.memory_bytes / 2


class TestDynamicInsert:
    def test_insert_equals_batch_build(self, small_family, rng):
        ids = np.sort(rng.choice(SMALL_NAMESPACE, size=100, replace=False)
                      ).astype(np.uint64)
        batch = PrunedBloomSampleTree.build(
            ids, SMALL_NAMESPACE, SMALL_DEPTH, small_family)
        incremental = PrunedBloomSampleTree.build(
            ids[:50], SMALL_NAMESPACE, SMALL_DEPTH, small_family)
        incremental.insert_many(ids[50:])
        assert incremental.num_nodes == batch.num_nodes
        nodes_a = {(n.level, n.index): n for n in batch.iter_nodes()}
        nodes_b = {(n.level, n.index): n for n in incremental.iter_nodes()}
        assert nodes_a.keys() == nodes_b.keys()
        for key in nodes_a:
            assert nodes_a[key].bloom == nodes_b[key].bloom
        np.testing.assert_array_equal(batch.occupied, incremental.occupied)

    def test_insert_into_empty_tree(self, small_family):
        tree = PrunedBloomSampleTree.build(
            np.array([], dtype=np.uint64), SMALL_NAMESPACE, SMALL_DEPTH,
            small_family)
        tree.insert(77)
        assert tree.root is not None
        assert tree.num_nodes == SMALL_DEPTH + 1  # one path
        assert 77 in tree.root.bloom

    def test_reinsert_noop(self, sparse_pruned_tree):
        tree, occupied = sparse_pruned_tree
        before = tree.num_nodes
        tree.insert(int(occupied[0]))
        assert tree.num_nodes == before
        assert len(tree.occupied) == len(occupied)

    def test_insert_validation(self, sparse_pruned_tree):
        tree, __ = sparse_pruned_tree
        with pytest.raises(ValueError):
            tree.insert(-1)
        with pytest.raises(ValueError):
            tree.insert(SMALL_NAMESPACE)

    def test_occupancy_fraction(self, sparse_pruned_tree):
        tree, occupied = sparse_pruned_tree
        assert tree.occupancy_fraction == pytest.approx(
            len(occupied) / SMALL_NAMESPACE)


class TestQueries:
    def test_candidates_are_occupied_slice(self, sparse_pruned_tree):
        tree, occupied = sparse_pruned_tree
        for leaf in tree.leaves():
            expected = occupied[(occupied >= leaf.lo) & (occupied < leaf.hi)]
            np.testing.assert_array_equal(
                tree.candidate_elements(leaf), expected)

    def test_sampling_over_occupied_subset(self, sparse_pruned_tree,
                                           small_family, rng):
        tree, occupied = sparse_pruned_tree
        subset = occupied[rng.choice(len(occupied), size=32, replace=False)]
        query = BloomFilter.from_items(subset, small_family)
        sampler = BSTSampler(tree, rng=rng)
        seen = set()
        for __ in range(200):
            result = sampler.sample(query)
            if result.value is not None:
                seen.add(result.value)
                # Every sample must at least be an occupied id that the
                # query filter accepts.
                assert result.value in occupied
                assert result.value in query
        assert seen  # something was sampled
        assert seen <= set(occupied.tolist())

    def test_reconstruction_matches_brute_force(self, sparse_pruned_tree,
                                                small_family, rng):
        tree, occupied = sparse_pruned_tree
        subset = occupied[rng.choice(len(occupied), size=32, replace=False)]
        query = BloomFilter.from_items(subset, small_family)
        result = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        brute = occupied[query.contains_many(occupied)]
        np.testing.assert_array_equal(result.elements, brute)

    def test_equivalent_to_full_tree_on_occupied(self, sparse_pruned_tree,
                                                 small_tree, small_family,
                                                 rng):
        """Pruned reconstruction == full-tree reconstruction n occupied."""
        tree, occupied = sparse_pruned_tree
        subset = occupied[rng.choice(len(occupied), size=24, replace=False)]
        query = BloomFilter.from_items(subset, small_family)
        pruned_out = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        full_out = BSTReconstructor(small_tree,
                                    exhaustive=True).reconstruct(query)
        expected = np.intersect1d(full_out.elements, occupied)
        np.testing.assert_array_equal(pruned_out.elements, expected)

    def test_occupied_view_read_only(self, sparse_pruned_tree):
        tree, __ = sparse_pruned_tree
        with pytest.raises(ValueError):
            tree.occupied[0] = 0
