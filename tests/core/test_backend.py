"""TreeBackend protocol conformance and registry behaviour."""

import numpy as np
import pytest

from repro.core import (
    BloomFilter,
    BloomSampleTree,
    BSTReconstructor,
    BSTSampler,
    DynamicBloomSampleTree,
    PrunedBloomSampleTree,
    TreeBackend,
    available_backends,
    backend_for,
    backend_key_of,
    create_family,
    load_tree,
    register_backend,
    save_tree,
)
from repro.core.backend import BackendSpec

M = 4_096
DEPTH = 4
VARIANTS = ("static", "pruned", "dynamic")


@pytest.fixture(scope="module")
def family():
    return create_family("murmur3", 3, 16_384, namespace_size=M, seed=5)


@pytest.fixture(scope="module")
def occupied():
    rng = np.random.default_rng(5)
    return np.sort(rng.choice(M, size=300, replace=False)).astype(np.uint64)


class TestRegistry:
    def test_all_variants_registered(self):
        assert set(available_backends()) >= set(VARIANTS)

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown tree backend"):
            backend_for("btree")

    def test_spec_classes(self):
        assert backend_for("static").cls is BloomSampleTree
        assert backend_for("pruned").cls is PrunedBloomSampleTree
        assert backend_for("dynamic").cls is DynamicBloomSampleTree

    def test_capability_flags(self):
        static, pruned, dynamic = (backend_for(k) for k in VARIANTS)
        assert not static.requires_occupied
        assert pruned.requires_occupied and dynamic.requires_occupied
        assert not static.supports_insert
        assert pruned.supports_insert and dynamic.supports_insert
        assert dynamic.supports_remove and not pruned.supports_remove

    def test_key_of_instances(self, family, occupied):
        for key in VARIANTS:
            tree = backend_for(key).build(M, DEPTH, family, occupied)
            assert backend_key_of(tree) == key

    def test_key_of_unregistered_type(self):
        with pytest.raises(TypeError):
            backend_key_of(object())

    def test_register_custom_backend(self, family):
        class MiniTree(BloomSampleTree):
            """A subclass stands in for a third-party backend."""

        register_backend(BackendSpec(
            key="mini", cls=MiniTree, requires_occupied=False,
            supports_insert=False, supports_remove=False,
        ))
        try:
            spec = backend_for("mini")
            tree = spec.build(M, 2, family)
            assert backend_key_of(tree) == "mini"
            assert isinstance(tree, TreeBackend)
        finally:
            from repro.core.backend import _REGISTRY
            _REGISTRY.pop("mini", None)


class TestConformance:
    """Every registered variant satisfies the protocol and the samplers."""

    @pytest.mark.parametrize("key", VARIANTS)
    def test_protocol_instance(self, key, family, occupied):
        tree = backend_for(key).build(M, DEPTH, family, occupied)
        assert isinstance(tree, TreeBackend)

    @pytest.mark.parametrize("key", VARIANTS)
    def test_sampler_and_reconstructor_work(self, key, family, occupied):
        tree = backend_for(key).build(M, DEPTH, family, occupied)
        secret = occupied[::3]
        query = BloomFilter.from_items(secret, family)
        truth = set(int(x) for x in secret)

        result = BSTSampler(tree, rng=9).sample(query)
        assert result.value is not None
        assert result.value in truth or key == "static"

        recovered = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        assert truth <= set(int(x) for x in recovered.elements)

    @pytest.mark.parametrize("key", VARIANTS)
    def test_uniform_introspection(self, key, family, occupied):
        tree = backend_for(key).build(M, DEPTH, family, occupied)
        nodes = list(tree.iter_nodes())
        assert tree.num_nodes == len(nodes)
        assert tree.memory_bytes > 0
        leaves = list(tree.leaves())
        assert all(tree.is_leaf(leaf) for leaf in leaves)

    def test_static_ignores_occupied(self, family, occupied):
        spec = backend_for("static")
        a = spec.build(M, DEPTH, family, occupied)
        b = spec.build(M, DEPTH, family, None)
        assert a.num_nodes == b.num_nodes == (1 << (DEPTH + 1)) - 1

    @pytest.mark.parametrize("key", ("pruned", "dynamic"))
    def test_empty_occupancy_builds(self, key, family):
        tree = backend_for(key).build(M, DEPTH, family, None)
        assert tree.root is None
        query = BloomFilter.from_items(np.array([1, 2], dtype=np.uint64),
                                       family)
        assert BSTSampler(tree, rng=0).sample(query).value is None


class TestSerializationAllVariants:
    """save_tree / load_tree round-trips every backend kind."""

    @pytest.mark.parametrize("key", VARIANTS)
    def test_roundtrip(self, key, family, occupied, tmp_path):
        tree = backend_for(key).build(M, DEPTH, family, occupied)
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert backend_key_of(loaded) == key
        assert loaded.namespace_size == M
        assert loaded.depth == DEPTH

        # Bit-identical node filters, node for node.
        original = {(n.level, n.index): n.bloom.bits.words
                    for n in tree.iter_nodes()}
        restored = {(n.level, n.index): n.bloom.bits.words
                    for n in loaded.iter_nodes()}
        assert original.keys() == restored.keys()
        for coord, words in original.items():
            assert np.array_equal(words, restored[coord]), coord

    def test_dynamic_roundtrip_preserves_removability(
            self, family, occupied, tmp_path):
        tree = backend_for("dynamic").build(M, DEPTH, family, occupied)
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        victim = int(occupied[0])
        loaded.remove(victim)
        assert victim not in set(loaded.occupied.tolist())
        # The removed id can no longer be sampled.
        query = BloomFilter.from_items(occupied[:1], family)
        result = BSTSampler(loaded, rng=3).sample(query)
        assert result.value != victim
