"""Tests for the fully dynamic (insert + remove) BloomSampleTree."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.dynamic import DynamicBloomSampleTree
from repro.core.pruned import PrunedBloomSampleTree
from repro.core.reconstruct import BSTReconstructor
from repro.core.sampling import BSTSampler
from tests.conftest import SMALL_DEPTH, SMALL_NAMESPACE


@pytest.fixture()
def dynamic_tree(small_family, rng):
    occupied = np.sort(rng.choice(SMALL_NAMESPACE, size=200, replace=False)
                       ).astype(np.uint64)
    tree = DynamicBloomSampleTree.build(occupied, SMALL_NAMESPACE,
                                        SMALL_DEPTH, small_family)
    return tree, occupied


class TestInsertRemove:
    def test_build_matches_pruned_tree(self, dynamic_tree, small_family):
        tree, occupied = dynamic_tree
        pruned = PrunedBloomSampleTree.build(occupied, SMALL_NAMESPACE,
                                             SMALL_DEPTH, small_family)
        assert tree.num_nodes == pruned.num_nodes
        dyn = {(n.level, n.index): n.bloom for n in tree.iter_nodes()}
        prn = {(n.level, n.index): n.bloom for n in pruned.iter_nodes()}
        assert dyn.keys() == prn.keys()
        for key in dyn:
            assert dyn[key] == prn[key]

    def test_remove_then_equals_fresh_build(self, dynamic_tree, small_family):
        tree, occupied = dynamic_tree
        tree.remove_many(occupied[::2])
        survivors = occupied[1::2]
        fresh = DynamicBloomSampleTree.build(survivors, SMALL_NAMESPACE,
                                             SMALL_DEPTH, small_family)
        np.testing.assert_array_equal(tree.occupied, survivors)
        assert tree.num_nodes == fresh.num_nodes
        dyn = {(n.level, n.index): n.bloom for n in tree.iter_nodes()}
        ref = {(n.level, n.index): n.bloom for n in fresh.iter_nodes()}
        assert dyn.keys() == ref.keys()
        for key in dyn:
            assert dyn[key] == ref[key]

    def test_remove_everything_empties_tree(self, dynamic_tree):
        tree, occupied = dynamic_tree
        tree.remove_many(occupied)
        assert tree.root is None
        assert tree.num_nodes == 0
        assert len(tree.occupied) == 0

    def test_empty_subtrees_detached(self, small_family):
        # Two ids in opposite halves; removing one kills half the tree.
        ids = np.array([1, SMALL_NAMESPACE - 2], dtype=np.uint64)
        tree = DynamicBloomSampleTree.build(ids, SMALL_NAMESPACE,
                                            SMALL_DEPTH, small_family)
        before = tree.num_nodes
        tree.remove(1)
        assert tree.num_nodes == SMALL_DEPTH + 1  # single surviving path
        assert tree.num_nodes < before
        assert tree.root.left is None

    def test_reinsert_after_remove(self, dynamic_tree):
        tree, occupied = dynamic_tree
        x = int(occupied[0])
        tree.remove(x)
        tree.insert(x)
        assert x in tree.root.bloom
        assert int(tree.occupied[0]) == x

    def test_remove_unknown_raises(self, dynamic_tree):
        tree, occupied = dynamic_tree
        missing = next(x for x in range(SMALL_NAMESPACE)
                       if x not in set(occupied.tolist()))
        with pytest.raises(KeyError):
            tree.remove(missing)

    def test_insert_validation(self, small_family):
        tree = DynamicBloomSampleTree(SMALL_NAMESPACE, SMALL_DEPTH,
                                      small_family)
        with pytest.raises(ValueError):
            tree.insert(SMALL_NAMESPACE)

    def test_constructor_validation(self, small_family):
        with pytest.raises(ValueError):
            DynamicBloomSampleTree(1, 0, small_family)
        with pytest.raises(ValueError):
            DynamicBloomSampleTree(16, 5, small_family)


class TestAlgorithmsOnDynamicTree:
    def test_sampler_works(self, dynamic_tree, small_family, rng):
        tree, occupied = dynamic_tree
        subset = occupied[rng.choice(len(occupied), size=32, replace=False)]
        query = BloomFilter.from_items(subset, small_family)
        sampler = BSTSampler(tree, rng=rng)
        for __ in range(50):
            value = sampler.sample(query).value
            assert value is not None
            assert value in query

    def test_reconstruction_tracks_removals(self, dynamic_tree,
                                            small_family):
        tree, occupied = dynamic_tree
        subset = occupied[:40]
        query = BloomFilter.from_items(subset, small_family)
        before = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        assert set(subset.tolist()) <= set(before.elements.tolist())
        # Forget half the queried ids from the *namespace* side.
        tree.remove_many(subset[:20])
        after = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        remaining = set(subset[20:].tolist())
        assert remaining <= set(after.elements.tolist())
        assert not (set(subset[:20].tolist()) &
                    set(after.elements.tolist()))

    def test_memory_shrinks_with_removals(self, dynamic_tree):
        tree, occupied = dynamic_tree
        before = tree.memory_bytes
        tree.remove_many(occupied[: len(occupied) // 2])
        assert tree.memory_bytes <= before

    def test_occupancy_fraction(self, dynamic_tree):
        tree, occupied = dynamic_tree
        assert tree.occupancy_fraction == pytest.approx(
            len(occupied) / SMALL_NAMESPACE)


class TestVectorisedBatchMutations:
    """insert_many / remove_many must leave the exact tree a loop of
    single-element calls builds: same nodes, same counters, same views."""

    def _trees(self, small_family, occupied):
        import numpy as np

        from repro.core.dynamic import DynamicBloomSampleTree

        batch = DynamicBloomSampleTree(4_096, 5, small_family)
        loop = DynamicBloomSampleTree(4_096, 5, small_family)
        batch.insert_many(occupied)
        for x in np.sort(occupied).tolist():
            loop.insert(int(x))
        return batch, loop

    @staticmethod
    def _assert_identical(a, b):
        import numpy as np

        assert np.array_equal(a.occupied, b.occupied)
        nodes_a = {(n.level, n.index): n for n in a.iter_nodes()}
        nodes_b = {(n.level, n.index): n for n in b.iter_nodes()}
        assert nodes_a.keys() == nodes_b.keys()
        for key, node in nodes_a.items():
            other = nodes_b[key]
            assert np.array_equal(node.counting.counts,
                                  other.counting.counts), key
            assert np.array_equal(node.bloom.bits.words,
                                  other.bloom.bits.words), key

    def test_insert_many_matches_insert_loop(self, small_family, rng):
        occupied = rng.choice(4_096, 700, replace=False).astype("uint64")
        batch, loop = self._trees(small_family, occupied)
        self._assert_identical(batch, loop)

    def test_remove_many_matches_remove_loop(self, small_family, rng):
        import numpy as np

        occupied = rng.choice(4_096, 700, replace=False).astype("uint64")
        batch, loop = self._trees(small_family, occupied)
        victims = rng.permutation(occupied)[:250]
        batch.remove_many(victims)
        for x in victims.tolist():
            loop.remove(int(x))
        self._assert_identical(batch, loop)
        # and removal composes with re-insertion
        batch.insert_many(victims[:40])
        for x in np.sort(victims[:40]).tolist():
            loop.insert(int(x))
        self._assert_identical(batch, loop)

    def test_remove_many_validates_before_mutating(self, small_family, rng):
        import numpy as np
        import pytest

        occupied = rng.choice(4_096, 300, replace=False).astype("uint64")
        batch, loop = self._trees(small_family, occupied)
        missing = np.setdiff1d(np.arange(4_096, dtype="uint64"),
                               occupied)[:1]
        bad = np.concatenate([occupied[:10], missing])
        with pytest.raises(KeyError):
            batch.remove_many(bad)
        self._assert_identical(batch, loop)  # all-or-nothing

    def test_remove_many_rejects_duplicates(self, small_family, rng):
        import numpy as np
        import pytest

        occupied = rng.choice(4_096, 100, replace=False).astype("uint64")
        batch, _ = self._trees(small_family, occupied)
        with pytest.raises(KeyError, match="twice"):
            batch.remove_many(np.array([occupied[0], occupied[0]],
                                       dtype="uint64"))
