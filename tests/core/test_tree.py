"""Tests for the complete BloomSampleTree structure."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.hashing import create_family
from repro.core.tree import BloomSampleTree
from tests.conftest import SMALL_DEPTH, SMALL_NAMESPACE


class TestStructure:
    def test_node_count(self, small_tree):
        assert small_tree.num_nodes == (1 << (SMALL_DEPTH + 1)) - 1

    def test_levels_partition_namespace(self, small_tree):
        by_level = {}
        for node in small_tree.iter_nodes():
            by_level.setdefault(node.level, []).append((node.lo, node.hi))
        for level, ranges in by_level.items():
            ranges.sort()
            assert ranges[0][0] == 0
            assert ranges[-1][1] == SMALL_NAMESPACE
            for (___, hi), (lo, __) in zip(ranges, ranges[1:]):
                assert hi == lo  # contiguous, non-overlapping
            assert len(ranges) == 1 << level

    def test_children_split_parent(self, small_tree):
        for node in small_tree.iter_nodes():
            if small_tree.is_leaf(node):
                assert node.left is None and node.right is None
                continue
            assert node.left.lo == node.lo
            assert node.right.hi == node.hi
            assert node.left.hi == node.right.lo == node.split_point()

    def test_leaf_count_and_capacity(self, small_tree):
        leaves = list(small_tree.leaves())
        assert len(leaves) == 1 << SMALL_DEPTH
        assert small_tree.leaf_capacity == max(l.range_size for l in leaves)
        assert sum(l.range_size for l in leaves) == SMALL_NAMESPACE

    def test_memory_accounting(self, small_tree):
        per_node = small_tree.root.bloom.nbytes
        assert small_tree.memory_bytes == per_node * small_tree.num_nodes


class TestLaminarFilters:
    def test_parent_is_union_of_children(self, small_tree):
        """Definition 5.1: each node's filter is its children's union."""
        for node in small_tree.iter_nodes():
            if small_tree.is_leaf(node):
                continue
            assert node.bloom == node.left.bloom.union(node.right.bloom)

    def test_leaf_filters_store_exact_ranges(self, small_tree, small_family):
        leaf = next(iter(small_tree.leaves()))
        direct = BloomFilter.from_items(
            np.arange(leaf.lo, leaf.hi, dtype=np.uint64), small_family)
        assert leaf.bloom == direct

    def test_every_element_passes_its_path(self, small_tree):
        rng = np.random.default_rng(0)
        for x in rng.choice(SMALL_NAMESPACE, size=20, replace=False).tolist():
            node = small_tree.root
            while node is not None:
                assert int(x) in node.bloom
                if small_tree.is_leaf(node):
                    break
                node = node.left if x < node.split_point() else node.right


class TestInterface:
    def test_candidate_elements_is_full_range(self, small_tree):
        leaf = next(iter(small_tree.leaves()))
        candidates = small_tree.candidate_elements(leaf)
        np.testing.assert_array_equal(
            candidates, np.arange(leaf.lo, leaf.hi, dtype=np.uint64))

    def test_check_query_accepts_matching(self, small_tree, small_family):
        small_tree.check_query(BloomFilter(small_family))

    def test_check_query_rejects_mismatched(self, small_tree):
        other = create_family("murmur3", 3, small_tree.family.m, seed=999)
        with pytest.raises(ValueError):
            small_tree.check_query(BloomFilter(other))

    def test_non_power_of_two_namespace(self, small_family):
        family = small_family.with_range(small_family.m)
        tree = BloomSampleTree.build(1000, 3, family)
        sizes = [leaf.range_size for leaf in tree.leaves()]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) <= 1

    def test_build_validation(self, small_family):
        with pytest.raises(ValueError):
            BloomSampleTree.build(1, 1, small_family)
        with pytest.raises(ValueError):
            BloomSampleTree.build(100, -1, small_family)
        with pytest.raises(ValueError):
            BloomSampleTree.build(4, 3, small_family)  # 2^3 > 4

    def test_depth_zero_tree(self, small_family):
        tree = BloomSampleTree.build(128, 0, small_family)
        assert tree.num_nodes == 1
        assert tree.is_leaf(tree.root)

    def test_batched_build_matches_direct(self, small_family):
        a = BloomSampleTree.build(512, 2, small_family, leaf_batch=33)
        b = BloomSampleTree.build(512, 2, small_family)
        for na, nb in zip(a.iter_nodes(), b.iter_nodes()):
            assert na.bloom == nb.bloom
