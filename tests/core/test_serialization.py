"""Tests for tree persistence."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.pruned import PrunedBloomSampleTree
from repro.core.reconstruct import BSTReconstructor
from repro.core.sampling import BSTSampler
from repro.core.serialization import _range_of, load_tree, save_tree
from repro.core.tree import BloomSampleTree
from tests.conftest import SMALL_DEPTH, SMALL_NAMESPACE


class TestCompleteTreeRoundTrip:
    def test_structure_preserved(self, small_tree, tmp_path):
        path = tmp_path / "tree.npz"
        save_tree(small_tree, path)
        loaded = load_tree(path)
        assert isinstance(loaded, BloomSampleTree)
        assert loaded.namespace_size == small_tree.namespace_size
        assert loaded.depth == small_tree.depth
        assert loaded.num_nodes == small_tree.num_nodes
        assert loaded.family.is_compatible_with(small_tree.family)
        for a, b in zip(small_tree.iter_nodes(), loaded.iter_nodes()):
            assert (a.level, a.index, a.lo, a.hi) == (b.level, b.index,
                                                      b.lo, b.hi)
            assert a.bloom == b.bloom

    def test_behaviour_preserved(self, small_tree, query_filter, tmp_path):
        path = tmp_path / "tree.npz"
        save_tree(small_tree, path)
        loaded = load_tree(path)
        original = BSTReconstructor(small_tree,
                                    exhaustive=True).reconstruct(query_filter)
        reloaded = BSTReconstructor(loaded,
                                    exhaustive=True).reconstruct(query_filter)
        np.testing.assert_array_equal(original.elements, reloaded.elements)
        # The loaded tree accepts the same query filters.
        assert BSTSampler(loaded, rng=0).sample(query_filter).value is not None

    def test_independent_of_original(self, small_tree, tmp_path):
        path = tmp_path / "tree.npz"
        save_tree(small_tree, path)
        loaded = load_tree(path)
        loaded.root.bloom.bits.clear()
        assert small_tree.root.bloom.bits.any()


class TestPrunedTreeRoundTrip:
    def test_round_trip(self, sparse_pruned_tree, small_family, tmp_path):
        tree, occupied = sparse_pruned_tree
        path = tmp_path / "pruned.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert isinstance(loaded, PrunedBloomSampleTree)
        np.testing.assert_array_equal(loaded.occupied, occupied)
        assert loaded.num_nodes == tree.num_nodes
        query = BloomFilter.from_items(occupied[:16], small_family)
        a = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        b = BSTReconstructor(loaded, exhaustive=True).reconstruct(query)
        np.testing.assert_array_equal(a.elements, b.elements)

    def test_loaded_tree_still_grows(self, sparse_pruned_tree, tmp_path):
        tree, __ = sparse_pruned_tree
        path = tmp_path / "pruned.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        before = len(loaded.occupied)
        new_id = next(x for x in range(SMALL_NAMESPACE)
                      if x not in set(loaded.occupied.tolist()))
        loaded.insert(new_id)
        assert len(loaded.occupied) == before + 1

    def test_empty_pruned_tree(self, small_family, tmp_path):
        tree = PrunedBloomSampleTree.build(
            np.array([], dtype=np.uint64), SMALL_NAMESPACE, SMALL_DEPTH,
            small_family)
        path = tmp_path / "empty.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.root is None
        assert loaded.num_nodes == 0


class TestRangeRecomputation:
    def test_matches_built_tree(self, small_tree):
        for node in small_tree.iter_nodes():
            assert _range_of(small_tree.namespace_size, node.level,
                             node.index) == (node.lo, node.hi)

    def test_non_power_of_two(self, small_family):
        tree = BloomSampleTree.build(1000, 4, small_family)
        for node in tree.iter_nodes():
            assert _range_of(1000, node.level, node.index) == \
                (node.lo, node.hi)


class TestErrors:
    def test_wrong_object(self, tmp_path):
        with pytest.raises(TypeError):
            save_tree(object(), tmp_path / "x.npz")

    def test_all_families_round_trip(self, tmp_path):
        from repro.core.hashing import create_family
        for name in ("simple", "murmur3", "md5"):
            family = create_family(name, 2, 512, namespace_size=256, seed=3)
            tree = BloomSampleTree.build(256, 2, family)
            path = tmp_path / f"{name}.npz"
            save_tree(tree, path)
            loaded = load_tree(path)
            assert loaded.family.is_compatible_with(family)
