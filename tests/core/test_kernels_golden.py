"""Golden-equivalence tests: vectorized kernels vs. the legacy scalar paths.

The acceptance bar for the kernel rewrite: on seeded RNGs, every family x
tree-backend combination must produce *bit-for-bit identical* samples and
reconstructions whether the hot paths run the vectorized kernels or the
legacy element-at-a-time loops (``kernels.scalar_kernels()``), and the
batched engine calls must match their sequential counterparts exactly.
"""

import numpy as np
import pytest

from repro.api import BloomDB
from repro.core import kernels

NAMESPACE = 4_000
SET_SIZE = 120
NUM_SETS = 3

FAMILIES = ["simple", "murmur3", "md5"]
BACKENDS = ["static", "pruned", "dynamic"]


def build_db(family: str, tree: str) -> BloomDB:
    rng = np.random.default_rng(11)
    occupied = None
    universe = NAMESPACE
    if tree in ("pruned", "dynamic"):
        occupied = rng.choice(NAMESPACE, size=NAMESPACE // 4,
                              replace=False).astype(np.uint64)
        universe = occupied
    db = BloomDB.plan(
        namespace_size=NAMESPACE, accuracy=0.9, set_size=SET_SIZE,
        family=family, tree=tree, seed=5, occupied=occupied,
    )
    for i in range(NUM_SETS):
        if isinstance(universe, np.ndarray):
            ids = rng.choice(universe, size=SET_SIZE, replace=False)
        else:
            ids = rng.choice(universe, size=SET_SIZE,
                             replace=False).astype(np.uint64)
        db.add_set(f"g{i}", ids)
    return db


def run_flow(db: BloomDB) -> dict:
    """One deterministic sampling + reconstruction flow on a fresh engine."""
    out = {}
    sampler = db.sampler_for(rng=123)
    query = db.filter("g0")
    out["singles"] = [sampler.sample(query).value for _ in range(25)]
    out["multi"] = db.sample_many(r=40).values
    out["recon"] = {name: db.reconstruct(name).elements.tolist()
                    for name in db.names()}
    return out


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
class TestScalarVectorizedGolden:
    def test_flows_bit_identical(self, family, backend):
        vectorized = run_flow(build_db(family, backend))
        with kernels.scalar_kernels():
            scalar = run_flow(build_db(family, backend))
        assert vectorized["singles"] == scalar["singles"]
        assert vectorized["multi"] == scalar["multi"]
        assert vectorized["recon"] == scalar["recon"]

    def test_positions_bit_identical(self, family, backend):
        db = build_db(family, backend)
        xs = np.arange(0, NAMESPACE, 7, dtype=np.uint64)
        vectorized = db.family.positions_many(xs)
        with kernels.scalar_kernels():
            scalar = db.family.positions_many(xs)
        assert np.array_equal(vectorized, scalar)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchSequentialGolden:
    def test_reconstruct_all_equals_sequential(self, family, backend):
        db = build_db(family, backend)
        batch = db.reconstruct_all()
        for name in db.names():
            sequential = db.store.reconstruct(name)
            assert np.array_equal(batch[name].elements, sequential.elements)
            assert batch[name].ops == sequential.ops

    def test_sample_many_equals_sequential(self, family, backend):
        batched_db = build_db(family, backend)
        sequential_db = build_db(family, backend)
        batched = batched_db.sample_many(r=30).values
        sequential = {
            name: sequential_db.store.sample_many(name, 30).values
            for name in sequential_db.names()
        }
        assert batched == sequential


class TestExhaustiveBatchGolden:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exhaustive_reconstruct_all(self, backend):
        db = build_db("murmur3", backend)
        batch = db.reconstruct_all(exhaustive=True)
        for name in db.names():
            sequential = db.store.reconstruct(name, exhaustive=True)
            assert np.array_equal(batch[name].elements, sequential.elements)
            assert batch[name].ops == sequential.ops


class TestSharedCacheGolden:
    def test_shared_position_cache_does_not_change_samples(self):
        """The shared per-batch cache must be semantically invisible."""
        a = build_db("murmur3", "static")
        b = build_db("murmur3", "static")
        with_cache = a.sample_many(r=64, replacement=False).values
        no_cache = {
            name: b.store.sample_many(name, 64, replacement=False).values
            for name in b.names()
        }
        assert with_cache == no_cache
