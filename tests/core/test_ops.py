"""Tests for the operation counter."""

from repro.core.ops import OpCounter


def test_defaults_zero():
    ops = OpCounter()
    assert ops.intersections == 0
    assert ops.memberships == 0
    assert ops.nodes_visited == 0
    assert ops.backtracks == 0
    assert ops.hash_inversions == 0


def test_merge_accumulates():
    a = OpCounter(intersections=1, memberships=2, nodes_visited=3,
                  backtracks=4, hash_inversions=5)
    b = OpCounter(intersections=10, memberships=20, nodes_visited=30,
                  backtracks=40, hash_inversions=50)
    a.merge(b)
    assert (a.intersections, a.memberships, a.nodes_visited,
            a.backtracks, a.hash_inversions) == (11, 22, 33, 44, 55)
    # b unchanged
    assert b.intersections == 10


def test_copy_independent():
    a = OpCounter(intersections=7)
    b = a.copy()
    b.intersections += 1
    assert a.intersections == 7
    assert b.intersections == 8
