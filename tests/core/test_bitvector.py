"""Tests for the numpy-backed bit vector."""

import numpy as np
import pytest

from repro.core.bitvector import BitVector


class TestSingleBits:
    def test_starts_empty(self):
        bv = BitVector(100)
        assert bv.count_ones() == 0
        assert not bv.any()
        assert not bv.get_bit(0)
        assert not bv.get_bit(99)

    def test_set_and_get(self):
        bv = BitVector(100)
        for pos in (0, 1, 63, 64, 65, 99):
            bv.set_bit(pos)
            assert bv.get_bit(pos)
        assert bv.count_ones() == 6

    def test_set_idempotent(self):
        bv = BitVector(10)
        bv.set_bit(3)
        bv.set_bit(3)
        assert bv.count_ones() == 1

    def test_bounds_checked(self):
        bv = BitVector(10)
        with pytest.raises(IndexError):
            bv.set_bit(10)
        with pytest.raises(IndexError):
            bv.get_bit(-1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BitVector(0)


class TestBatchOps:
    def test_set_many_matches_loop(self):
        rng = np.random.default_rng(0)
        positions = rng.integers(0, 1000, size=200, dtype=np.uint64)
        batch = BitVector(1000)
        batch.set_many(positions)
        loop = BitVector(1000)
        for p in positions.tolist():
            loop.set_bit(int(p))
        assert batch == loop

    def test_test_many_matches_get(self):
        rng = np.random.default_rng(1)
        bv = BitVector(500)
        bv.set_many(rng.integers(0, 500, size=100, dtype=np.uint64))
        probes = rng.integers(0, 500, size=300, dtype=np.uint64)
        results = bv.test_many(probes)
        for p, r in zip(probes.tolist(), results.tolist()):
            assert r == bv.get_bit(int(p))

    def test_test_many_2d_shape(self):
        bv = BitVector(64)
        bv.set_many(np.array([1, 2, 3], dtype=np.uint64))
        probes = np.array([[1, 2], [3, 4]], dtype=np.uint64)
        result = bv.test_many(probes)
        assert result.shape == (2, 2)
        assert result.tolist() == [[True, True], [True, False]]

    def test_set_many_empty_noop(self):
        bv = BitVector(64)
        bv.set_many(np.array([], dtype=np.uint64))
        assert bv.count_ones() == 0

    def test_set_many_bounds(self):
        bv = BitVector(64)
        with pytest.raises(IndexError):
            bv.set_many(np.array([64], dtype=np.uint64))


class TestWholeVector:
    def _pair(self):
        a = BitVector(130)
        b = BitVector(130)
        a.set_many(np.array([0, 5, 64, 127], dtype=np.uint64))
        b.set_many(np.array([5, 63, 64, 129], dtype=np.uint64))
        return a, b

    def test_and(self):
        a, b = self._pair()
        assert sorted((a & b).set_positions().tolist()) == [5, 64]

    def test_or(self):
        a, b = self._pair()
        assert sorted((a | b).set_positions().tolist()) == [0, 5, 63, 64, 127, 129]

    def test_inplace_ops(self):
        a, b = self._pair()
        c = a.copy()
        c &= b
        assert c == (a & b)
        d = a.copy()
        d |= b
        assert d == (a | b)

    def test_intersection_count(self):
        a, b = self._pair()
        assert a.intersection_count(b) == 2
        assert a.intersects(b)

    def test_disjoint_intersects_false(self):
        a = BitVector(64)
        b = BitVector(64)
        a.set_bit(1)
        b.set_bit(2)
        assert not a.intersects(b)
        assert a.intersection_count(b) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BitVector(64) & BitVector(65)

    def test_type_mismatch(self):
        with pytest.raises(TypeError):
            BitVector(64) & object()

    def test_clear(self):
        a, _ = self._pair()
        a.clear()
        assert a.count_ones() == 0

    def test_copy_independent(self):
        a, _ = self._pair()
        c = a.copy()
        c.set_bit(10)
        assert not a.get_bit(10)


class TestPositions:
    def test_set_and_unset_partition(self):
        rng = np.random.default_rng(3)
        bv = BitVector(300)
        bv.set_many(rng.integers(0, 300, size=80, dtype=np.uint64))
        set_pos = bv.set_positions()
        unset_pos = bv.unset_positions()
        assert len(set_pos) + len(unset_pos) == 300
        assert len(np.intersect1d(set_pos, unset_pos)) == 0
        assert bv.count_ones() == len(set_pos)

    def test_positions_below_num_bits(self):
        # num_bits not a multiple of 64: padding bits must not leak.
        bv = BitVector(70)
        bv.set_bit(69)
        assert bv.set_positions().tolist() == [69]
        assert len(bv.unset_positions()) == 69

    def test_nbytes(self):
        assert BitVector(64).nbytes == 8
        assert BitVector(65).nbytes == 16


class TestModelEquivalence:
    """Cross-check all ops against a Python big-int model."""

    def test_random_ops_match_int_model(self):
        rng = np.random.default_rng(9)
        size = 257
        bv_a, bv_b = BitVector(size), BitVector(size)
        int_a = int_b = 0
        for __ in range(300):
            pos = int(rng.integers(0, size))
            if rng.random() < 0.5:
                bv_a.set_bit(pos)
                int_a |= 1 << pos
            else:
                bv_b.set_bit(pos)
                int_b |= 1 << pos
        assert bv_a.count_ones() == bin(int_a).count("1")
        assert (bv_a & bv_b).count_ones() == bin(int_a & int_b).count("1")
        assert (bv_a | bv_b).count_ones() == bin(int_a | int_b).count("1")
        for pos in range(size):
            assert bv_a.get_bit(pos) == bool(int_a >> pos & 1)
