"""Golden equivalence: compiled descend_frontier vs. the recursive sampler.

The acceptance bar for the compiled-plan layer: across every hash family
x tree backend x replacement setting, :func:`repro.core.plan.descend_frontier`
must produce *bit-for-bit* the same samples — and the same op counts — as
:meth:`repro.core.sampling.BSTSampler.sample_many` fed the same per-query
RNG stream, and the engine's ``plan="compiled"`` batched path must match
the ``plan="objects"`` path spec-for-spec (seeded and shared-stream).
"""

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig
from repro.api.batch import SampleSpec
from repro.core.plan import CompiledTree, DescentRequest, descend_frontier
from repro.core.sampling import BSTSampler

NAMESPACE = 4_000
SET_SIZE = 120
NUM_SETS = 3

FAMILIES = ["simple", "murmur3", "md5"]
BACKENDS = ["static", "pruned", "dynamic"]


def build_db(family: str, tree: str, plan: str = "objects") -> BloomDB:
    rng = np.random.default_rng(11)
    occupied = None
    universe = NAMESPACE
    if tree in ("pruned", "dynamic"):
        occupied = rng.choice(NAMESPACE, size=NAMESPACE // 4,
                              replace=False).astype(np.uint64)
        universe = occupied
    db = BloomDB.plan(
        namespace_size=NAMESPACE, accuracy=0.9, set_size=SET_SIZE,
        family=family, tree=tree, seed=5, plan=plan, occupied=occupied,
    )
    for i in range(NUM_SETS):
        if isinstance(universe, np.ndarray):
            ids = rng.choice(universe, size=SET_SIZE, replace=False)
        else:
            ids = rng.choice(universe, size=SET_SIZE,
                             replace=False).astype(np.uint64)
        db.add_set(f"g{i}", ids)
    return db


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("replacement", [True, False])
class TestDescendFrontierGolden:
    def test_bit_identical_to_recursive(self, family, backend, replacement):
        db = build_db(family, backend)
        plan = db.compiled_tree()
        for descent in ("threshold", "floored"):
            for name in db.names():
                # A fresh seeded sampler per set so both sides consume
                # identical streams.
                query = db.filter(name)
                sampler = BSTSampler(db.tree,
                                     rng=np.random.default_rng(123),
                                     descent=descent)
                want = sampler.sample_many(query, 40, replacement)
                got = plan.sample_many(
                    query, 40, replacement,
                    rng=np.random.default_rng(123), descent=descent)
                assert want.values == got.values
                assert want.ops == got.ops
                assert want.shortfall == got.shortfall


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
class TestEnginePlansGolden:
    def test_seeded_specs_match_objects_plan(self, family, backend):
        objects_db = build_db(family, backend, plan="objects")
        compiled_db = build_db(family, backend, plan="compiled")
        specs = [SampleSpec(f"g{i % NUM_SETS}", 8 + i, seed=100 + i,
                            replacement=bool(i % 2), key=str(i))
                 for i in range(9)]
        want = objects_db.sample_many(specs)
        got = compiled_db.sample_many(specs)
        for i in range(len(specs)):
            assert want[str(i)].values == got[str(i)].values
            assert want[str(i)].ops == got[str(i)].ops

    def test_shared_stream_batches_match_objects_plan(self, family, backend):
        # Unseeded requests draw from the engine's shared stream; both
        # plans must consume it identically, batch after batch.
        objects_db = build_db(family, backend, plan="objects")
        compiled_db = build_db(family, backend, plan="compiled")
        for _ in range(2):
            want = objects_db.sample_many(r=20)
            got = compiled_db.sample_many(r=20)
            assert want.values == got.values
            assert want.shortfall == got.shortfall


class TestBatchSemantics:
    def test_duplicate_queries_share_frontier_but_not_results(self):
        db = build_db("murmur3", "static")
        plan = db.compiled_tree()
        query = db.filter("g0")
        requests = [DescentRequest(query, 16, rng=seed)
                    for seed in (1, 2, 1)]
        first, second, third = descend_frontier(plan, requests)
        assert first.values == third.values  # same seed, same stream
        assert first.values != second.values or first.ops != second.ops

    def test_frontier_cache_hit_is_bit_identical(self):
        db = build_db("murmur3", "static")
        plan = db.compiled_tree()
        query = db.filter("g1")
        cold = plan.sample_many(query, 24, rng=np.random.default_rng(5))
        warm = plan.sample_many(query, 24, rng=np.random.default_rng(5))
        assert cold.values == warm.values
        assert cold.ops == warm.ops

    def test_empty_request_list(self):
        db = build_db("murmur3", "static")
        assert descend_frontier(db.compiled_tree(), []) == []


class TestMmapRoundtripGolden:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_save_mmap_load_sample_roundtrip(self, backend, tmp_path):
        db = build_db("murmur3", backend)
        path = tmp_path / "plan.bst"
        db.compiled_tree().save(path)
        loaded = CompiledTree.load(path, mmap=True)
        for name in db.names():
            query = db.filter(name)
            want = BSTSampler(
                db.tree, rng=np.random.default_rng(31)).sample_many(
                    query, 25, False)
            got = loaded.sample_many(query, 25, False,
                                     rng=np.random.default_rng(31))
            assert want.values == got.values
            assert want.ops == got.ops
