"""Tests for the estimator formulas and Eq. (1)."""

import math

import pytest

from repro.core.cardinality import (
    estimate_cardinality,
    estimate_intersection_size,
    false_positive_rate,
    false_set_overlap_probability,
)


class TestFalsePositiveRate:
    def test_zero_items(self):
        assert false_positive_rate(0, 1000, 3) == 0.0

    def test_monotone_in_n(self):
        rates = [false_positive_rate(n, 10_000, 3) for n in (10, 100, 1000)]
        assert rates == sorted(rates)

    def test_monotone_in_m(self):
        rates = [false_positive_rate(100, m, 3) for m in (500, 5_000, 50_000)]
        assert rates == sorted(rates, reverse=True)

    def test_known_value(self):
        # (1 - e^{-1})^1 at k=1, n=m.
        assert false_positive_rate(1000, 1000, 1) == pytest.approx(
            1 - math.exp(-1))

    def test_validation(self):
        with pytest.raises(ValueError):
            false_positive_rate(-1, 100, 3)
        with pytest.raises(ValueError):
            false_positive_rate(1, 0, 3)


class TestCardinalityEstimate:
    def test_roundtrip_expected_bits(self):
        m, k = 10_000, 3
        for n in (10, 100, 1000):
            # Expected number of set bits after n insertions.
            t = round(m * (1 - (1 - 1 / m) ** (k * n)))
            assert estimate_cardinality(t, m, k) == pytest.approx(n, rel=0.02)

    def test_empty(self):
        assert estimate_cardinality(0, 100, 3) == 0.0

    def test_full_is_infinite(self):
        assert math.isinf(estimate_cardinality(100, 100, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_cardinality(101, 100, 3)
        with pytest.raises(ValueError):
            estimate_cardinality(5, 1, 3)


class TestIntersectionEstimate:
    def _expected_bits(self, n, m, k):
        return m * (1 - (1 - 1 / m) ** (k * n))

    def test_calibrated_on_expectations(self):
        """Feeding the estimator exact expected bit counts recovers sizes."""
        m, k = 100_000, 3
        n1, n2, shared = 1000, 800, 300
        t1 = self._expected_bits(n1, m, k)
        t2 = self._expected_bits(n2, m, k)
        # P(bit set in both) = 1 - P(!A) - P(!B) + P(!(A u B)).
        p_not_a = (1 - 1 / m) ** (k * n1)
        p_not_b = (1 - 1 / m) ** (k * n2)
        p_not_union = (1 - 1 / m) ** (k * (n1 + n2 - shared))
        t_and = m * (1 - p_not_a - p_not_b + p_not_union)
        estimate = estimate_intersection_size(
            round(t1), round(t2), round(t_and), m, k)
        assert estimate == pytest.approx(shared, rel=0.05)

    def test_disjoint_on_expectations_is_zero(self):
        m, k = 100_000, 3
        t1 = round(self._expected_bits(1000, m, k))
        t2 = round(self._expected_bits(800, m, k))
        p_not_union = (1 - 1 / m) ** (k * 1800)
        t_and = round(m * (1 - (1 - 1 / m) ** (k * 1000)
                           - (1 - 1 / m) ** (k * 800) + p_not_union))
        estimate = estimate_intersection_size(t1, t2, t_and, m, k)
        assert estimate == pytest.approx(0.0, abs=1.0)

    def test_zero_and_bits(self):
        assert estimate_intersection_size(100, 100, 0, 1000, 3) == 0.0

    def test_saturated_returns_inf(self):
        m = 1000
        assert math.isinf(estimate_intersection_size(m, m, m, m, 3))

    def test_never_negative(self):
        # t_and below the independence baseline clamps to zero.
        assert estimate_intersection_size(500, 500, 1, 10_000, 3) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_intersection_size(2000, 10, 5, 1000, 3)
        with pytest.raises(ValueError):
            estimate_intersection_size(10, 10, 5, 1, 3)


class TestFalseSetOverlap:
    def test_eq1_reference(self):
        # Direct evaluation of Eq. (1).
        m, k, n1, n2 = 1000, 3, 10, 20
        expected = 1 - (1 - 1 / m) ** (k * k * n1 * n2)
        assert false_set_overlap_probability(n1, n2, m, k) == pytest.approx(
            expected)

    def test_empty_sets_never_overlap(self):
        assert false_set_overlap_probability(0, 100, 1000, 3) == 0.0

    def test_monotone_in_sizes(self):
        probs = [false_set_overlap_probability(n, 50, 10_000, 3)
                 for n in (1, 10, 100, 1000)]
        assert probs == sorted(probs)
        assert all(0 <= p <= 1 for p in probs)

    def test_large_exponent_saturates(self):
        assert false_set_overlap_probability(10 ** 6, 10 ** 6, 100, 3) == \
            pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            false_set_overlap_probability(-1, 1, 100, 3)
