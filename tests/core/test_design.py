"""Tests for the parameter planner (Section 5.4)."""

import pytest

from repro.core.design import (
    bloom_size_for_accuracy,
    expected_accuracy,
    family_for_parameters,
    leaf_capacity_for_ratio,
    measure_cost_ratio,
    modelled_cost_ratio,
    plan_tree,
    required_fpp,
)
from repro.experiments.tables import PAPER_TABLE2_M, PAPER_TABLE3_M


class TestAccuracyModel:
    def test_roundtrip(self):
        """m chosen for an accuracy target achieves (at least) it."""
        for accuracy in (0.5, 0.7, 0.9):
            m = bloom_size_for_accuracy(accuracy, 1000, 10 ** 6, 3)
            achieved = expected_accuracy(m, 1000, 10 ** 6, 3)
            assert achieved >= accuracy - 0.005

    def test_reproduces_paper_table2(self):
        """Our model recovers the paper's Table 2 m values (M=1e6)."""
        for accuracy, paper_m in PAPER_TABLE2_M.items():
            m = bloom_size_for_accuracy(accuracy, 1000, 10 ** 6, 3)
            assert m == pytest.approx(paper_m, rel=0.005), accuracy

    def test_reproduces_paper_table3(self):
        """Our model recovers the paper's Table 3 m values (M=1e7)."""
        for accuracy, paper_m in PAPER_TABLE3_M.items():
            m = bloom_size_for_accuracy(accuracy, 1000, 10 ** 7, 3)
            assert m == pytest.approx(paper_m, rel=0.005), accuracy

    def test_accuracy_one_is_capped(self):
        """'Accuracy 1.0' behaves as the 0.99 cap (see DESIGN.md)."""
        m_one = bloom_size_for_accuracy(1.0, 1000, 10 ** 6, 3)
        m_cap = bloom_size_for_accuracy(0.99, 1000, 10 ** 6, 3)
        assert m_one == m_cap

    def test_monotone_in_accuracy(self):
        ms = [bloom_size_for_accuracy(a, 1000, 10 ** 6, 3)
              for a in (0.5, 0.6, 0.7, 0.8, 0.9)]
        assert ms == sorted(ms)

    def test_required_fpp_inverts_accuracy(self):
        fp = required_fpp(0.9, 1000, 10 ** 6)
        acc = 1000 / (1000 + (10 ** 6 - 1000) * fp)
        assert acc == pytest.approx(0.9)

    def test_required_fpp_validation(self):
        with pytest.raises(ValueError):
            required_fpp(0.0, 10, 100)
        with pytest.raises(ValueError):
            required_fpp(0.5, 100, 100)

    def test_loose_target_small_filter(self):
        # Accuracy so low any filter works: minimal m returned.
        m = bloom_size_for_accuracy(0.001, 1000, 2000, 3)
        assert m >= 64


class TestLeafCapacity:
    def test_rule_boundary(self):
        # cost_ratio 150 admits leaves up to N/log2(N) <= 150.
        leaf, depth = leaf_capacity_for_ratio(10 ** 6, 150.0)
        assert leaf / (leaf).bit_length() <= 151
        bigger = leaf * 2
        import math
        assert bigger / math.log2(bigger) > 150.0
        assert leaf == -(-10 ** 6 // (1 << depth))  # ceil division

    def test_small_ratio_gives_deep_tree(self):
        leaf_small, depth_small = leaf_capacity_for_ratio(1 << 16, 2.0)
        leaf_big, depth_big = leaf_capacity_for_ratio(1 << 16, 1000.0)
        assert depth_small > depth_big
        assert leaf_small < leaf_big

    def test_leaf_floor(self):
        leaf, __ = leaf_capacity_for_ratio(64, 0.1)
        assert leaf >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_capacity_for_ratio(1, 10.0)
        with pytest.raises(ValueError):
            leaf_capacity_for_ratio(100, 0.0)


class TestPlanTree:
    def test_paper_depths_close(self):
        """Depths land within one level of the paper's Table 2."""
        paper_depths = {0.5: 10, 0.6: 10, 0.7: 10, 0.8: 9, 0.9: 9, 1.0: 6}
        for accuracy, depth in paper_depths.items():
            params = plan_tree(10 ** 6, 1000, accuracy)
            assert abs(params.depth - depth) <= 1, accuracy

    def test_consistency(self):
        params = plan_tree(10 ** 6, 1000, 0.9)
        assert params.leaf_capacity == -(-10 ** 6 // (1 << params.depth))
        assert params.num_nodes == (1 << (params.depth + 1)) - 1
        assert params.memory_bytes == params.num_nodes * \
            ((params.m + 63) // 64) * 8
        assert params.memory_mb == pytest.approx(params.memory_bytes / 1e6)

    def test_explicit_cost_ratio(self):
        shallow = plan_tree(10 ** 6, 1000, 0.9, cost_ratio=10_000.0)
        deep = plan_tree(10 ** 6, 1000, 0.9, cost_ratio=10.0)
        assert shallow.depth < deep.depth

    def test_family_for_parameters(self):
        params = plan_tree(10 ** 5, 100, 0.8)
        family = family_for_parameters(params, "simple", seed=3)
        assert family.m == params.m
        assert family.k == params.k


class TestCostRatio:
    def test_modelled_ratio(self):
        assert modelled_cost_ratio(6400, 2) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            modelled_cost_ratio(0, 3)

    def test_measured_ratio_positive(self):
        family = family_for_parameters(plan_tree(10 ** 4, 100, 0.8), "murmur3")
        ratio = measure_cost_ratio(family, rounds=20)
        assert ratio >= 1.0
