"""Tests for the FilterStore (the paper's database D-bar)."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.store import FilterStore
from tests.conftest import SMALL_NAMESPACE


@pytest.fixture()
def store(small_family, small_tree, rng):
    store = FilterStore(small_family, tree=small_tree, rng=7)
    store.create("evens", np.arange(0, 200, 2, dtype=np.uint64))
    store.create("odds", np.arange(1, 200, 2, dtype=np.uint64))
    store.create("hundreds", np.arange(0, SMALL_NAMESPACE, 100,
                                       dtype=np.uint64))
    return store


class TestManagement:
    def test_create_and_query(self, store):
        assert len(store) == 3
        assert "evens" in store
        assert store.names() == ["evens", "hundreds", "odds"]
        assert store.contains("evens", 42)
        assert not store.contains("evens", 43)

    def test_duplicate_name_rejected(self, store):
        with pytest.raises(KeyError):
            store.create("evens")

    def test_unknown_name_rejected(self, store):
        with pytest.raises(KeyError):
            store.filter("primes")
        with pytest.raises(KeyError):
            store.discard("primes")

    def test_add_extends_set(self, store):
        store.add("evens", np.array([999], dtype=np.uint64))
        assert store.contains("evens", 999)

    def test_discard(self, store):
        store.discard("odds")
        assert len(store) == 2
        assert "odds" not in store

    def test_create_empty_then_fill(self, small_family):
        store = FilterStore(small_family)
        store.create("empty")
        assert store.filter("empty").is_empty()

    def test_nbytes(self, store):
        assert store.nbytes == 3 * store.filter("evens").nbytes

    def test_sets_containing(self, store):
        hits = store.sets_containing(100)
        assert "evens" in hits and "hundreds" in hits
        assert "odds" not in hits


class TestSamplingAndReconstruction:
    def test_sample_from_named_set(self, store):
        evens = set(range(0, 200, 2))
        for __ in range(20):
            value = store.sample("evens").value
            assert value in store.filter("evens")
        hits = sum(store.sample("evens").value in evens for __ in range(20))
        assert hits >= 18

    def test_sample_many(self, store):
        result = store.sample_many("odds", 15, replacement=False)
        assert len(set(result.values)) == len(result.values)

    def test_reconstruct(self, store):
        result = store.reconstruct("hundreds", exhaustive=True)
        expected = set(range(0, SMALL_NAMESPACE, 100))
        assert expected <= set(result.elements.tolist())

    def test_union_sampling(self, store):
        union = set(range(200))
        for __ in range(20):
            value = store.sample_union(["evens", "odds"]).value
            assert value is not None
        hits = sum(store.sample_union(["evens", "odds"]).value in union
                   for __ in range(20))
        assert hits >= 18

    def test_union_filter_exact(self, store, small_family):
        union = store.union_filter(["evens", "odds"])
        direct = BloomFilter.from_items(np.arange(200, dtype=np.uint64),
                                        small_family)
        assert union == direct

    def test_intersection_sampling(self, store):
        # evens n hundreds == hundreds (all hundreds are even).
        result = store.sample_intersection(["evens", "hundreds"])
        assert result.value is not None
        assert result.value in store.filter("hundreds")

    def test_empty_name_list(self, store):
        with pytest.raises(ValueError):
            store.union_filter([])

    def test_store_without_tree_rejects_sampling(self, small_family):
        store = FilterStore(small_family)
        store.create("a", np.array([1], dtype=np.uint64))
        with pytest.raises(RuntimeError):
            store.sample("a")

    def test_incompatible_tree_rejected(self, small_tree):
        from repro.core.hashing import create_family
        other = create_family("murmur3", 3, small_tree.family.m, seed=999)
        with pytest.raises(ValueError):
            FilterStore(other, tree=small_tree)


class TestPersistence:
    def test_round_trip(self, store, small_tree, tmp_path):
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = FilterStore.load(path, tree=small_tree, rng=7)
        assert loaded.names() == store.names()
        for name in store.names():
            assert loaded.filter(name) == store.filter(name)
        # Sampling works on the loaded store.
        assert loaded.sample("evens").value is not None

    def test_empty_store_round_trip(self, small_family, tmp_path):
        store = FilterStore(small_family)
        path = tmp_path / "empty.npz"
        store.save(path)
        loaded = FilterStore.load(path)
        assert len(loaded) == 0
