"""CompiledTree structure, persistence and materialisation tests."""

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig
from repro.core import backend_key_of
from repro.core.mmapio import read_blob, write_blob
from repro.core.plan import NO_CHILD, CompiledTree, DescentRequest, descend_frontier
from repro.core.pruned import PrunedBloomSampleTree

NAMESPACE = 4_000


def build_db(tree="static", family="murmur3", seed=5):
    rng = np.random.default_rng(17)
    occupied = None
    universe = NAMESPACE
    if tree in ("pruned", "dynamic"):
        occupied = rng.choice(NAMESPACE, size=NAMESPACE // 4,
                              replace=False).astype(np.uint64)
        universe = occupied
    db = BloomDB.plan(namespace_size=NAMESPACE, accuracy=0.9, set_size=150,
                      family=family, tree=tree, seed=seed, occupied=occupied)
    ids = rng.choice(universe, size=150, replace=False)
    db.add_set("s0", np.asarray(ids, dtype=np.uint64))
    return db


class TestMmapIO:
    def test_roundtrip_mmap_and_copy(self, tmp_path):
        arrays = {
            "a": np.arange(100, dtype=np.uint64).reshape(10, 10),
            "b": np.array([1.5, -2.5]),
            "empty": np.empty((0, 7), dtype=np.int32),
        }
        path = tmp_path / "blob.bst"
        write_blob(path, {"hello": "world"}, arrays)
        for mmap in (True, False):
            meta, loaded = read_blob(path, mmap=mmap)
            assert meta == {"hello": "world"}
            for name, array in arrays.items():
                assert np.array_equal(loaded[name], array)
                assert loaded[name].dtype == array.dtype
        meta, mapped = read_blob(path, mmap=True)
        assert not mapped["a"].flags.writeable

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bst"
        path.write_bytes(b"not a blob at all")
        with pytest.raises(ValueError, match="bad magic"):
            read_blob(path)


class TestCompiledStructure:
    @pytest.mark.parametrize("tree", ["static", "pruned", "dynamic"])
    def test_level_order_and_children(self, tree):
        db = build_db(tree)
        plan = db.compiled_tree()
        assert plan.backend == tree
        assert plan.num_nodes == db.tree.num_nodes
        # Ascending slots are level order; children point forward.
        levels = plan.level.tolist()
        assert levels == sorted(levels)
        for slot in range(plan.num_nodes):
            for child in (int(plan.left[slot]), int(plan.right[slot])):
                if child != NO_CHILD:
                    assert child > slot
                    assert plan.level[child] == plan.level[slot] + 1
        # Packed popcounts match the node filters.
        assert np.array_equal(
            plan.ones, np.bitwise_count(plan.words).sum(axis=1))

    def test_leaf_candidates_match_tree(self):
        db = build_db("pruned")
        plan = db.compiled_tree()
        by_coord = {(n.level, n.index): n for n in db.tree.iter_nodes()}
        for slot in range(plan.num_nodes):
            if not plan.leaf[slot]:
                continue
            node = by_coord[(int(plan.level[slot]), int(plan.index[slot]))]
            assert np.array_equal(plan.candidates(slot),
                                  db.tree.candidate_elements(node))

    def test_empty_pruned_tree(self):
        from repro.core.bloom import BloomFilter

        db = BloomDB.plan(namespace_size=NAMESPACE, accuracy=0.9,
                          set_size=10, tree="pruned", seed=3)
        plan = db.compiled_tree()
        assert plan.num_nodes == 0
        result = descend_frontier(
            plan, [DescentRequest(BloomFilter(db.family), 5, rng=1)])[0]
        assert result.values == [] and result.shortfall == 5

    def test_incompatible_query_rejected(self):
        from repro.core.bloom import BloomFilter

        db = build_db("static")
        other = BloomDB.plan(namespace_size=NAMESPACE, accuracy=0.9,
                             set_size=150, seed=99)
        with pytest.raises(ValueError, match="incompatible"):
            db.compiled_tree().sample_many(
                BloomFilter(other.family), 4, rng=1)

    def test_bad_rounds_and_descent_rejected(self):
        db = build_db("static")
        plan = db.compiled_tree()
        with pytest.raises(ValueError, match="rounds must be positive"):
            plan.sample_many(db.filter("s0"), 0, rng=1)
        with pytest.raises(ValueError, match="descent"):
            plan.sample_many(db.filter("s0"), 4, rng=1, descent="magic")


class TestPlanPersistence:
    @pytest.mark.parametrize("tree", ["static", "pruned", "dynamic"])
    def test_save_load_sample_roundtrip(self, tree, tmp_path):
        db = build_db(tree)
        plan = db.compiled_tree()
        path = tmp_path / "plan.bst"
        plan.save(path)
        loaded = CompiledTree.load(path)
        assert loaded.backend == tree
        assert loaded.num_nodes == plan.num_nodes
        assert np.array_equal(np.asarray(loaded.words),
                              np.asarray(plan.words))
        query = db.filter("s0")
        want = plan.sample_many(query, 32, rng=np.random.default_rng(7))
        got = loaded.sample_many(query, 32, rng=np.random.default_rng(7))
        assert want.values == got.values
        assert want.ops == got.ops

    def test_loaded_words_are_memory_mapped(self, tmp_path):
        db = build_db("static")
        path = tmp_path / "plan.bst"
        db.compiled_tree().save(path)
        loaded = CompiledTree.load(path)
        assert isinstance(loaded.words, np.memmap)
        assert not loaded.words.flags.writeable

    @pytest.mark.parametrize("tree", ["static", "pruned", "dynamic"])
    def test_to_tree_matches_source(self, tree, tmp_path):
        db = build_db(tree)
        path = tmp_path / "plan.bst"
        db.compiled_tree().save(path)
        rebuilt = CompiledTree.load(path).to_tree()
        assert backend_key_of(rebuilt) == tree
        assert rebuilt.num_nodes == db.tree.num_nodes
        source = {(n.level, n.index): n for n in db.tree.iter_nodes()}
        for node in rebuilt.iter_nodes():
            twin = source[(node.level, node.index)]
            assert (node.lo, node.hi) == (twin.lo, twin.hi)
            assert np.array_equal(node.bloom.bits.words,
                                  twin.bloom.bits.words)

    def test_writable_to_tree_allows_insert(self, tmp_path):
        db = build_db("pruned")
        path = tmp_path / "plan.bst"
        db.compiled_tree().save(path)
        tree = CompiledTree.load(path).to_tree(writable=True)
        assert isinstance(tree, PrunedBloomSampleTree)
        fresh = int(np.setdiff1d(
            np.arange(NAMESPACE, dtype=np.uint64), tree.occupied)[0])
        tree.insert(fresh)  # must not raise on read-only buffers
        assert fresh in [int(x) for x in tree.occupied.tolist()[:1]] or \
            fresh in set(tree.occupied.tolist())


class TestEngineIntegration:
    def test_plan_invalidated_by_occupancy_change(self):
        db = build_db("pruned")
        first = db.compiled_tree()
        assert db.compiled_tree() is first  # cached
        fresh = np.setdiff1d(np.arange(NAMESPACE, dtype=np.uint64),
                             db.occupied)[:5]
        db.insert_ids(fresh)
        second = db.compiled_tree()
        assert second is not first
        assert second.num_nodes >= first.num_nodes

    def test_static_plan_cached(self):
        db = build_db("static")
        assert db.compiled_tree() is db.compiled_tree()

    def test_engine_config_plan_key(self):
        with pytest.raises(ValueError, match="execution plan"):
            EngineConfig(namespace_size=1000, plan="jit")
        config = EngineConfig(namespace_size=1000, plan="compiled")
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_compiled_save_load_is_lazy_and_identical(self, tmp_path):
        from repro.api.batch import SampleSpec

        db = build_db("static")
        compiled = BloomDB(
            EngineConfig(**{**db.config.to_dict(), "plan": "compiled"}),
            params=db.params, family=db.family, tree=db.tree)
        compiled.store.install("s0", db.filter("s0"))
        target = tmp_path / "engine"
        compiled.save(target)
        assert (target / "plan.bst").exists()
        assert (target / "sets.bst").exists()

        loaded = BloomDB.load(target)
        specs = [SampleSpec("s0", 16, seed=i, key=str(i)) for i in range(4)]
        want = db.sample_many(specs)
        got = loaded.sample_many(specs)
        assert all(want[str(i)].values == got[str(i)].values
                   for i in range(4))
        # Sampling through the plan must not have built the object graph.
        assert loaded._tree is None
        assert loaded.store._tree is None
        # ...but object-walking operations still work, and engine + store
        # share one materialisation.
        recon = loaded.reconstruct("s0")
        assert np.array_equal(recon.elements, db.reconstruct("s0").elements)
        assert loaded.store._tree is not None
        assert loaded.tree is loaded.store.tree

    def test_compiled_store_copy_on_write(self, tmp_path):
        db = build_db("static")
        compiled = BloomDB(
            EngineConfig(**{**db.config.to_dict(), "plan": "compiled"}),
            params=db.params, family=db.family, tree=db.tree)
        compiled.store.install("s0", db.filter("s0"))
        target = tmp_path / "engine"
        compiled.save(target)
        loaded = BloomDB.load(target)
        assert not loaded.filter("s0").bits.words.flags.writeable
        loaded.extend_set("s0", np.array([1, 2, 3], dtype=np.uint64))
        assert loaded.filter("s0").bits.words.flags.writeable
        assert loaded.contains("s0", 1)


class TestPoolSharing:
    def test_static_shards_share_tree_and_plan(self):
        from repro.service.pool import ShardedEnginePool

        config = EngineConfig(namespace_size=NAMESPACE, accuracy=0.9,
                              seed=7, plan="compiled")
        pool = ShardedEnginePool(config, shards=3)
        plans = {id(engine.compiled_tree()) for engine in pool.engines}
        trees = {id(engine.tree) for engine in pool.engines}
        assert len(plans) == 1
        assert len(trees) == 1

    def test_from_engine_reuses_loaded_components(self, tmp_path):
        from repro.service.pool import ShardedEnginePool

        db = build_db("static")
        pool = ShardedEnginePool.from_engine(db, shards=2)
        assert all(engine.tree is db.tree for engine in pool.engines)
        assert pool.contains("s0", int(db.reconstruct("s0").elements[0]))

    def test_from_engine_shares_one_plan_even_when_uncompiled(self):
        """Regression: shards spawned from a compiled-config template
        with no cached plan each compiled their own CompiledTree."""
        from repro.service.pool import ShardedEnginePool

        db = build_db("static")
        compiled_db = BloomDB(
            EngineConfig(**{**db.config.to_dict(), "plan": "compiled"}),
            params=db.params, family=db.family, tree=db.tree)
        compiled_db.store.install("s0", db.filter("s0"))
        assert compiled_db._compiled is None
        pool = ShardedEnginePool.from_engine(compiled_db, shards=4)
        plans = {id(engine.compiled_tree()) for engine in pool.engines}
        assert len(plans) == 1
