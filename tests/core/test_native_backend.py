"""Backend equivalence: the native replay tier vs. the NumPy reference.

The contract of :mod:`repro.core.native`: every descent backend is
bit-for-bit interchangeable.  Given the same plan, the same requests and
the same per-request RNG streams, ``backend="native"`` must produce the
same values *and* the same OpCounters as ``backend="numpy"`` — across
hash families, tree backends, replacement modes and ``DeltaPlanView``
mutation epochs — and a missing native tier must degrade to the NumPy
path silently rather than fail.
"""

import numpy as np
import pytest

from repro.api import BloomDB
from repro.api.batch import SampleSpec
from repro.core import native
from repro.core.plan import DescentRequest, descend_frontier
from repro.obs.runtime import RUNTIME

NAMESPACE = 4_000
SET_SIZE = 120
NUM_SETS = 3

FAMILIES = ["simple", "murmur3", "md5"]
BACKENDS = ["static", "pruned", "dynamic"]

needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason=f"native tier unavailable: {native.native_status()['reason']}")


def build_db(family: str, tree: str, **overrides) -> BloomDB:
    rng = np.random.default_rng(11)
    occupied = None
    universe = NAMESPACE
    if tree in ("pruned", "dynamic"):
        occupied = rng.choice(NAMESPACE, size=NAMESPACE // 4,
                              replace=False).astype(np.uint64)
        universe = occupied
    db = BloomDB.plan(
        namespace_size=NAMESPACE, accuracy=0.9, set_size=SET_SIZE,
        family=family, tree=tree, seed=5, occupied=occupied, **overrides,
    )
    for i in range(NUM_SETS):
        if isinstance(universe, np.ndarray):
            ids = rng.choice(universe, size=SET_SIZE, replace=False)
        else:
            ids = rng.choice(universe, size=SET_SIZE,
                             replace=False).astype(np.uint64)
        db.add_set(f"g{i}", ids)
    return db


def assert_equivalent(plan, queries, replacement, *, descent="threshold"):
    """Same plan + streams through both backends → identical results."""
    def batch(backend):
        requests = [
            DescentRequest(query, 16 + 7 * i, replacement,
                           rng=np.random.default_rng(1000 + i))
            for i, query in enumerate(queries)
        ]
        return descend_frontier(plan, requests, descent=descent,
                                backend=backend)

    for want, got in zip(batch("numpy"), batch("native")):
        assert want.values == got.values
        assert want.ops == got.ops
        assert want.shortfall == got.shortfall


@needs_native
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("replacement", [True, False])
class TestBackendEquivalence:
    def test_base_plan_bit_identical(self, family, backend, replacement):
        db = build_db(family, backend)
        plan = db.compiled_tree()
        queries = [db.filter(name) for name in db.names()]
        for descent in ("threshold", "floored"):
            assert_equivalent(plan, queries, replacement, descent=descent)

    def test_delta_view_bit_identical(self, family, backend, replacement):
        if backend == "static":
            pytest.skip("static trees take no occupancy mutations")
        db = build_db(family, backend, plan="compiled", mutation="delta")
        db.current_epoch()
        rng = np.random.default_rng(77)
        free = np.setdiff1d(
            np.arange(NAMESPACE, dtype=np.uint64), db.occupied)
        # Two mutation epochs: the second inherits the first's frontier
        # rows through ``parent_frontier``, which is exactly the path
        # whose programs must rebuild against the new view.
        for step in range(2):
            if backend == "dynamic":
                db.retire_ids(rng.choice(db.occupied, size=20,
                                         replace=False))
            db.insert_ids(rng.choice(free, size=20, replace=False))
            view = db.current_epoch().view()
            queries = [db.filter(name) for name in db.names()]
            assert_equivalent(view, queries, replacement)


class TestFallbackAndResolution:
    def test_resolve_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown descent backend"):
            native.resolve_backend("cuda")

    def test_env_var_overrides_request(self, monkeypatch):
        monkeypatch.setenv("REPRO_DESCENT_BACKEND", "numpy")
        assert native.resolve_backend("native") == "numpy"

    def test_forced_fallback_is_silent_and_identical(self, monkeypatch):
        db = build_db("murmur3", "static")
        plan = db.compiled_tree()
        query = db.filter("g0")
        want = plan.sample_many(query, 40, rng=np.random.default_rng(3),
                                backend="numpy")
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        native._reset()
        try:
            assert not native.native_available()
            assert native.resolve_backend("native") == "numpy"
            got = plan.sample_many(query, 40, rng=np.random.default_rng(3),
                                   backend="native")
            assert want.values == got.values
            assert want.ops == got.ops
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            native._reset()

    def test_status_reports_reason_when_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        native._reset()
        try:
            status = native.native_status()
            assert status["available"] is False
            assert "REPRO_NATIVE_DISABLE" in status["reason"]
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            native._reset()


class TestNoopCompactKeepsCaches:
    """A no-op ``compact()`` must not cold-miss the frontier cache."""

    def specs(self):
        return [SampleSpec(f"g{i % NUM_SETS}", 12, seed=500 + i, key=str(i))
                for i in range(6)]

    def test_compact_then_sample_is_bit_equal_and_cached(self):
        db = build_db("murmur3", "static", plan="compiled")
        before = db.sample_many(self.specs())
        warm_hits = RUNTIME.counter("frontier_cache_hits")
        warm_misses = RUNTIME.counter("frontier_cache_misses")
        noops = RUNTIME.counter("compactions_noop")

        db.compact()  # nothing mutated: must reuse the plan object

        after = db.sample_many(self.specs())
        for i in range(6):
            assert before[str(i)].values == after[str(i)].values
            assert before[str(i)].ops == after[str(i)].ops
        assert RUNTIME.counter("compactions_noop") == noops + 1
        assert RUNTIME.counter("frontier_cache_misses") == warm_misses
        assert RUNTIME.counter("frontier_cache_hits") > warm_hits

    def test_mutated_compact_still_recompiles(self):
        db = build_db("murmur3", "dynamic", plan="compiled",
                      mutation="delta")
        db.current_epoch()
        plan_before = db.current_epoch().plan
        db.retire_ids(db.occupied[:10])
        db.compact()
        assert db.current_epoch().plan is not plan_before
        assert db.current_epoch().delta is None


class TestStaleRowRepair:
    """A delta epoch repairs inherited frontier rows, never cold-misses.

    Crossing a mutation epoch punches holes in the cached frontier rows
    at the epoch's dirty slots; the next batch must patch exactly those
    holes (counted as ``frontier_cache_repairs``), not re-walk the
    wavefront as a cache miss — and the repaired row must serve results
    bit-identical to an engine rebuilt from scratch at the same
    occupancy.
    """

    def specs(self):
        return [SampleSpec(f"g{i % NUM_SETS}", 12, seed=900 + i, key=str(i))
                for i in range(6)]

    def test_epoch_crossing_repairs_instead_of_missing(self):
        db = build_db("murmur3", "dynamic", plan="compiled",
                      mutation="delta")
        db.current_epoch()
        db.sample_many(self.specs())  # warm the frontier cache

        rng = np.random.default_rng(33)
        free = np.setdiff1d(
            np.arange(NAMESPACE, dtype=np.uint64), db.occupied)
        # Small enough not to trip the delta-density recompile: the
        # epoch must stay an overlay for the repair path to be on trial.
        db.retire_ids(rng.choice(db.occupied, size=8, replace=False))
        db.insert_ids(rng.choice(free, size=8, replace=False))

        misses = RUNTIME.counter("frontier_cache_misses")
        repairs = RUNTIME.counter("frontier_cache_repairs")
        got = db.sample_many(self.specs())
        assert RUNTIME.counter("frontier_cache_misses") == misses
        assert RUNTIME.counter("frontier_cache_repairs") > repairs

        rebuilt = BloomDB.plan(
            namespace_size=NAMESPACE, accuracy=0.9, set_size=SET_SIZE,
            family="murmur3", tree="dynamic", seed=5, plan="compiled",
            occupied=np.array(db.occupied))
        for name in db.names():
            rebuilt.store.install(name, db.filter(name).copy())
        want = rebuilt.sample_many(self.specs())
        for i in range(6):
            assert want[str(i)].values == got[str(i)].values
            assert want[str(i)].ops == got[str(i)].ops
