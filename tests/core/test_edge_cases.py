"""Edge cases across the core: tiny parameters, degenerate inputs.

These guard the boundaries that realistic experiments never touch but a
library user eventually will: one-word bit vectors, namespaces smaller
than the filter, trees of depth zero, queries that match nothing.
"""

import numpy as np
import pytest

from repro.core.bitvector import BitVector
from repro.core.bloom import BloomFilter
from repro.core.dynamic import DynamicBloomSampleTree
from repro.core.hashing import SimpleHashFamily, create_family
from repro.core.pruned import PrunedBloomSampleTree
from repro.core.reconstruct import BSTReconstructor
from repro.core.sampling import BSTSampler, ExactUniformSampler
from repro.core.serialization import load_tree, save_tree
from repro.core.tree import BloomSampleTree


class TestTinyBitVectors:
    def test_single_bit(self):
        bv = BitVector(1)
        assert not bv.get_bit(0)
        bv.set_bit(0)
        assert bv.get_bit(0)
        assert bv.count_ones() == 1
        assert bv.set_positions().tolist() == [0]
        assert bv.unset_positions().size == 0

    def test_sub_word_filter(self):
        family = create_family("murmur3", 2, 7, seed=0)
        bloom = BloomFilter(family)
        bloom.add_many(np.arange(20, dtype=np.uint64))
        assert bloom.count_ones() <= 7
        assert bloom.contains_many(np.arange(20, dtype=np.uint64)).all()

    def test_exactly_64_bits(self):
        bv = BitVector(64)
        bv.set_bit(63)
        assert bv.nbytes == 8
        assert bv.set_positions().tolist() == [63]


class TestTinyHashNamespaces:
    def test_namespace_smaller_than_m(self):
        # p must cover max(namespace, m): inversion stays exact.
        family = SimpleHashFamily(2, 1_024, namespace_size=100, seed=1)
        assert family.p >= 1_024
        xs = np.arange(100, dtype=np.uint64)
        positions = family.positions_many(xs)
        for target in (0, 500, 1_023):
            expected = np.flatnonzero(positions[:, 0] == target)
            got = family.invert(0, target, 100)
            np.testing.assert_array_equal(got, expected.astype(np.uint64))

    def test_two_element_namespace(self):
        family = create_family("murmur3", 2, 64, namespace_size=2, seed=0)
        tree = BloomSampleTree.build(2, 1, family)
        query = BloomFilter.from_items(np.array([1], dtype=np.uint64),
                                       family)
        result = BSTSampler(tree, rng=0).sample(query)
        assert result.value == 1


class TestDegenerateQueries:
    @pytest.fixture(scope="class")
    def tiny(self):
        family = create_family("murmur3", 3, 4_096, namespace_size=512,
                               seed=2)
        tree = BloomSampleTree.build(512, 3, family)
        return family, tree

    def test_query_of_out_of_namespace_elements(self, tiny):
        """A filter of ids outside [0, M) matches nothing in the tree."""
        family, tree = tiny
        query = BloomFilter.from_items(
            np.array([100_000, 200_000], dtype=np.uint64), family)
        result = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        # Only chance false positives can appear, never guaranteed hits.
        assert result.size <= 5

    def test_full_namespace_query(self, tiny):
        family, tree = tiny
        query = BloomFilter.from_items(np.arange(512, dtype=np.uint64),
                                       family)
        result = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        assert result.size == 512
        sample = BSTSampler(tree, rng=1).sample(query)
        assert 0 <= sample.value < 512

    def test_exact_sampler_distinct_queries_not_confused(self, tiny):
        family, tree = tiny
        a = BloomFilter.from_items(np.array([10], dtype=np.uint64), family)
        b = BloomFilter.from_items(np.array([400], dtype=np.uint64), family)
        sampler = ExactUniformSampler(tree, rng=0, exhaustive=True)
        assert sampler.sample(a).value == 10
        assert sampler.sample(b).value == 400
        assert sampler.sample(a).value == 10  # cache keyed by contents


class TestSerializationGuards:
    def test_non_tree_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_tree(object(), tmp_path / "junk.npz")

    def test_dynamic_tree_round_trips(self, small_family, tmp_path):
        tree = DynamicBloomSampleTree(1_024, 3, small_family)
        tree.insert(5)
        save_tree(tree, tmp_path / "dyn.npz")
        loaded = load_tree(tmp_path / "dyn.npz")
        assert isinstance(loaded, DynamicBloomSampleTree)
        assert loaded.occupied.tolist() == [5]


class TestPrunedSingletons:
    def test_single_occupied_id(self, small_family):
        tree = PrunedBloomSampleTree.build(
            np.array([123], dtype=np.uint64), 4_096, 5, small_family)
        assert tree.num_nodes == 6  # one root-to-leaf path
        query = BloomFilter.from_items(np.array([123], dtype=np.uint64),
                                       small_family)
        assert BSTSampler(tree, rng=0).sample(query).value == 123

    def test_min_and_max_ids(self, small_family):
        ids = np.array([0, 4_095], dtype=np.uint64)
        tree = PrunedBloomSampleTree.build(ids, 4_096, 5, small_family)
        query = BloomFilter.from_items(ids, small_family)
        result = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        np.testing.assert_array_equal(result.elements, ids)
