"""Golden equivalence: ``base ⊕ delta`` descent vs. a from-scratch rebuild.

The acceptance bar for the epoch/delta mutation layer: after arbitrary
occupancy churn (inserts that materialise new subtrees, removals that
detach emptied ones), descent over the
:class:`~repro.core.delta.DeltaPlanView` must be *bit-for-bit* identical
— values and op counts — to descent over a :class:`CompiledTree`
recompiled from scratch from the mutated object tree, across every hash
family and replacement setting; and compacting a delta through the
mmap-able save/load roundtrip must change nothing.
"""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.delta import DeltaCompactionNeeded, PlanDelta
from repro.core.dynamic import DynamicBloomSampleTree
from repro.core.hashing import create_family
from repro.core.plan import CompiledTree, DescentRequest, descend_frontier
from repro.core.pruned import PrunedBloomSampleTree

NAMESPACE = 16_000
DEPTH = 9
M = 4_096
FAMILIES = ["simple", "murmur3", "md5"]


def churned_tree_and_delta(family_name: str, backend: str):
    """A tree churned through a delta chain, plus reference material."""
    rng = np.random.default_rng(7)
    family = create_family(family_name, 3, M, namespace_size=NAMESPACE,
                           seed=3)
    # Occupancy clustered in the lower half so upper-half inserts
    # materialise brand-new subtrees (appended slots).
    occupied = np.sort(rng.choice(NAMESPACE // 2, 1_500,
                                  replace=False).astype(np.uint64))
    cls = (PrunedBloomSampleTree if backend == "pruned"
           else DynamicBloomSampleTree)
    tree = cls.build(occupied, NAMESPACE, DEPTH, family)
    delta = PlanDelta(CompiledTree.from_tree(tree))

    fresh = np.sort(rng.choice(np.arange(NAMESPACE // 2, NAMESPACE,
                                         dtype=np.uint64),
                               400, replace=False))
    tree.insert_many(fresh)
    delta = delta.extend(tree, fresh)
    if backend == "dynamic":
        victims = occupied[(occupied >= 1_000) & (occupied < 5_000)]
        tree.remove_many(victims)
        delta = delta.extend(tree, victims)
    queries = []
    for lo in (0, 300, 600):
        query = BloomFilter(family)
        query.add_many(np.concatenate([occupied[lo + 200:lo + 500],
                                       fresh[:150]]))
        queries.append(query)
    return tree, delta, queries


@pytest.mark.parametrize("family_name", FAMILIES)
@pytest.mark.parametrize("backend", ["pruned", "dynamic"])
@pytest.mark.parametrize("replacement", [True, False])
def test_delta_view_matches_fresh_recompile(family_name, backend,
                                            replacement):
    """base ⊕ delta == recompiled-from-scratch, values and op counts."""
    tree, delta, queries = churned_tree_and_delta(family_name, backend)
    view = delta.view()
    rebuilt = CompiledTree.from_tree(tree)
    for seed, query in enumerate(queries):
        got = descend_frontier(
            view, [DescentRequest(query, 48, replacement, 100 + seed)])[0]
        want = descend_frontier(
            rebuilt, [DescentRequest(query, 48, replacement, 100 + seed)])[0]
        assert got.values == want.values
        assert got.ops == want.ops


@pytest.mark.parametrize("family_name", FAMILIES)
def test_compact_mmap_roundtrip(tmp_path, family_name):
    """Folding the delta into a saved plan and mmap-reloading it is
    bit-invisible to descent."""
    tree, delta, queries = churned_tree_and_delta(family_name, "dynamic")
    view = delta.view()
    compacted = CompiledTree.from_tree(tree)
    path = tmp_path / "plan.bst"
    compacted.save(path)
    reloaded = CompiledTree.load(path, mmap=True)
    assert not reloaded.words.flags.writeable
    for seed, query in enumerate(queries):
        got = descend_frontier(
            view, [DescentRequest(query, 32, True, seed)])[0]
        want = descend_frontier(
            reloaded, [DescentRequest(query, 32, True, seed)])[0]
        assert got.values == want.values
        assert got.ops == want.ops


def test_frontier_inheritance_is_bit_identical():
    """Warm frontier rows inherited through a delta chain never change
    what descent computes (only what it re-evaluates)."""
    rng = np.random.default_rng(21)
    family = create_family("murmur3", 3, M, namespace_size=NAMESPACE,
                           seed=3)
    occupied = np.sort(rng.choice(NAMESPACE, 2_000,
                                  replace=False).astype(np.uint64))
    free = np.setdiff1d(np.arange(NAMESPACE, dtype=np.uint64), occupied)
    tree = DynamicBloomSampleTree.build(occupied, NAMESPACE, DEPTH, family)
    base = CompiledTree.from_tree(tree)
    query = BloomFilter(family)
    query.add_many(occupied[:400])
    # Warm the base cache, then churn: every later epoch inherits.
    descend_frontier(base, [DescentRequest(query, 16, True, 0)])
    delta = PlanDelta(base)
    for cycle in range(4):
        victims = np.array(tree.occupied)[cycle * 50:(cycle + 1) * 50]
        tree.remove_many(victims)
        delta = delta.extend(tree, victims)
        fresh = free[cycle * 50:(cycle + 1) * 50]
        tree.insert_many(fresh)
        delta = delta.extend(tree, fresh)
        got = descend_frontier(
            delta.view(), [DescentRequest(query, 16, True, cycle)])[0]
        want = descend_frontier(
            CompiledTree.from_tree(tree),
            [DescentRequest(query, 16, True, cycle)])[0]
        assert got.values == want.values
        assert got.ops == want.ops


def test_delta_is_copy_on_write():
    """extend() never mutates the published predecessor delta."""
    tree, delta, _ = churned_tree_and_delta("murmur3", "dynamic")
    before = (dict(delta.words), dict(delta.links),
              dict(delta.leaf_candidates), list(delta.appended))
    victims = np.array(tree.occupied)[:30]
    tree.remove_many(victims)
    extended = delta.extend(tree, victims)
    assert extended is not delta
    assert (dict(delta.words), dict(delta.links),
            dict(delta.leaf_candidates), list(delta.appended)) == before


def test_emptied_tree_requires_compaction():
    """Retiring every id is a structural change the overlay rejects."""
    tree, delta, _ = churned_tree_and_delta("murmur3", "dynamic")
    everything = np.array(tree.occupied)
    tree.remove_many(everything)
    with pytest.raises(DeltaCompactionNeeded):
        delta.extend(tree, everything)
