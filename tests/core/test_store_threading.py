"""Thread-safety of the shared-state hot paths (ISSUE 3 satellite).

Shard workers read filters and caches while other threads mutate the
store; these tests hammer the locked surfaces from many threads and
assert nothing corrupts, deadlocks, or diverges from the sequential
result.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import BloomDB
from repro.core.kernels import PositionCache


@pytest.fixture(scope="module")
def db():
    engine = BloomDB.plan(namespace_size=6_000, accuracy=0.9, set_size=120,
                          seed=11)
    rng = np.random.default_rng(3)
    for i in range(6):
        engine.add_set(f"s{i}", rng.choice(6_000, 120,
                                           replace=False).astype(np.uint64))
    return engine


class TestFilterStoreLocking:
    def test_concurrent_creates_and_reads(self, db):
        store = db.store
        errors = []
        barrier = threading.Barrier(8)

        def writer(k):
            barrier.wait()
            for i in range(40):
                store.create(f"w{k}-{i}",
                             np.arange(i, i + 50, dtype=np.uint64))

        def reader():
            barrier.wait()
            for _ in range(200):
                # names() sorts a snapshot of the dict; without the lock
                # this races dict mutation ("dict changed size during
                # iteration").
                for name in store.names():
                    try:
                        store.contains(name, 1)
                    except KeyError:
                        pass  # discarded between snapshot and query: fine

        threads = ([threading.Thread(target=writer, args=(k,))
                    for k in range(4)]
                   + [threading.Thread(target=reader) for _ in range(4)])
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
            assert not t.is_alive(), "deadlocked"
        assert not errors
        assert sum(1 for n in store.names() if n.startswith("w")) == 160
        for k in range(4):
            for i in range(40):
                store.discard(f"w{k}-{i}")

    def test_duplicate_create_races_resolve_to_one_winner(self, db):
        store = db.store
        outcomes = []

        def create():
            try:
                store.create("contended", np.arange(10, dtype=np.uint64))
                outcomes.append("won")
            except KeyError:
                outcomes.append("lost")

        with ThreadPoolExecutor(max_workers=8) as pool:
            for handle in [pool.submit(create) for _ in range(8)]:
                handle.result(30)
        assert outcomes.count("won") == 1
        store.discard("contended")

    def test_concurrent_seeded_sampling_matches_sequential(self, db):
        # Seeded calls bypass the shared stream, so N threads sampling
        # concurrently must reproduce the sequential answers exactly.
        want = {i: db.store.sample_many(f"s{i % 6}", 5, rng=100 + i).values
                for i in range(24)}

        def draw(i):
            return i, db.store.sample_many(f"s{i % 6}", 5,
                                           rng=100 + i).values

        with ThreadPoolExecutor(max_workers=8) as pool:
            got = dict(pool.map(draw, range(24)))
        assert got == want

    def test_shared_stream_sampling_is_serialised_not_corrupted(self, db):
        # Unseeded draws share one np.random.Generator; the lock makes
        # them safe (values differ run to run, but nothing crashes and
        # every draw lands inside the namespace).
        def draw(_):
            return db.store.sample("s0").value

        with ThreadPoolExecutor(max_workers=8) as pool:
            values = list(pool.map(draw, range(64)))
        assert all(v is None or 0 <= v < 6_000 for v in values)


class TestPositionCacheLocking:
    def test_shared_cache_across_threads_is_consistent(self, db):
        # One cache shared by concurrent seeded samplers: results must
        # equal the single-threaded, cache-less answers.
        want = {i: db.store.sample_many(f"s{i % 6}", 4, rng=500 + i).values
                for i in range(24)}
        cache = PositionCache(db.tree)

        def draw(i):
            return i, db.store.sample_many(f"s{i % 6}", 4, rng=500 + i,
                                           position_cache=cache).values

        with ThreadPoolExecutor(max_workers=8) as pool:
            got = dict(pool.map(draw, range(24)))
        assert got == want

    def test_estimate_cache_is_bit_identical(self, db):
        # The (query, node) estimate memo must not change any decision:
        # same seed, with and without a pre-warmed shared cache.
        cache = PositionCache(db.tree)
        first = db.store.sample_many("s1", 6, rng=9,
                                     position_cache=cache).values
        second = db.store.sample_many("s1", 6, rng=9,
                                      position_cache=cache).values
        cold = db.store.sample_many("s1", 6, rng=9).values
        assert first == second == cold
