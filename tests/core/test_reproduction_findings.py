"""Regression tests encoding the reproduction's documented findings.

Each test pins one claim from DESIGN.md sections 4 and 7 so the findings
stay true as the code evolves (and so a reader can execute the claims).
"""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.core.design import plan_tree
from repro.core.hashing import create_family
from repro.workloads.generators import clustered_query_set


class TestMemoryAccuracyTradeoff:
    def test_memory_can_drop_as_accuracy_rises(self):
        """The paper's Section 5.4 observation, visible in Table 2.

        Raising accuracy grows m, which can *shrink* the tree (larger
        leaves satisfy the cost rule), and the node-count drop outweighs
        the per-node growth.
        """
        memories = {a: plan_tree(10 ** 6, 1000, a).memory_mb
                    for a in (0.6, 0.7, 1.0)}
        # Depth drops 10 -> 9 between 0.6 and 0.7: memory falls.
        assert memories[0.7] < memories[0.6]
        # And the accuracy-1.0 tree is smaller than the 0.6 tree.
        assert memories[1.0] < memories[0.6]


class TestAffineHashArtifact:
    """DESIGN.md 7(b): Simple hashes vs contiguous id runs."""

    @pytest.fixture(scope="class")
    def setup(self):
        namespace, n = 100_000, 600
        params = plan_tree(namespace, n, 0.9)
        secret = clustered_query_set(namespace, n, rng=5)
        # Contiguous comparison range disjoint from the secret where
        # possible (the artifact needs range-vs-run structure).
        return namespace, params, secret

    def _estimate_quality(self, family_name, namespace, params, secret):
        """|estimated - true| for range-node vs clustered-query overlap."""
        family = create_family(family_name, params.k, params.m,
                               namespace_size=namespace, seed=11)
        query = BloomFilter.from_items(secret, family)
        errors = []
        for lo in range(0, namespace, namespace // 8):
            hi = lo + namespace // 8
            node = BloomFilter.from_items(
                np.arange(lo, hi, dtype=np.uint64), family)
            true_overlap = int(((secret >= lo) & (secret < hi)).sum())
            estimate = query.estimate_intersection(node.bloom if hasattr(
                node, "bloom") else node)
            estimate = min(estimate, float(namespace // 8))
            errors.append(abs(estimate - true_overlap))
        return float(np.mean(errors))

    def test_murmur_estimates_contiguous_overlaps_well(self, setup):
        namespace, params, secret = setup
        error = self._estimate_quality("murmur3", namespace, params, secret)
        assert error < 30  # a fraction of the per-range truth (~75)

    def test_simple_estimates_are_corrupted(self, setup):
        """The artifact: affine structure inflates estimator error.

        At this (test-sized) scale the corruption shows as ~2x the
        murmur3 error — zeroed mid-range estimates plus overshoot on the
        cluster ranges; at M=1e6 it collapses sampling accuracy to ~0
        (measured in DESIGN.md section 7b).
        """
        namespace, params, secret = setup
        murmur_error = self._estimate_quality("murmur3", namespace, params,
                                              secret)
        simple_error = self._estimate_quality("simple", namespace, params,
                                              secret)
        assert simple_error > 1.5 * murmur_error

    def test_membership_fpp_is_not_the_problem(self, setup):
        """Plain membership stays nominal — only the estimator breaks."""
        namespace, params, secret = setup
        family = create_family("simple", params.k, params.m,
                               namespace_size=namespace, seed=11)
        query = BloomFilter.from_items(secret, family)
        outsiders = np.setdiff1d(
            np.arange(namespace, dtype=np.uint64), secret,
            assume_unique=False)
        observed_fpp = query.contains_many(outsiders).mean()
        model_fpp = query.expected_fpp(len(secret))
        assert observed_fpp < 5 * model_fpp + 1e-4


class TestAccuracyOneIsCapped:
    def test_finite_m_for_accuracy_one(self):
        """DESIGN.md section 4: the paper's 'accuracy 1.0' is really 0.99."""
        params = plan_tree(10 ** 6, 1000, 1.0)
        assert params.m == plan_tree(10 ** 6, 1000, 0.99).m
        assert params.m == pytest.approx(137_230, rel=0.005)
