"""Tests for the ``repro bench`` CLI and the repro.bench harness.

Covers the satellite checklist: a smoke run on a tiny scenario, a
cache-hit on the second invocation, and schema validity of the emitted
``BENCH_*.json`` files.
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import (
    BENCH_FILES,
    SCHEMA_VERSION,
    SCENARIOS,
    BenchRunner,
    validate_payload,
)
from repro.bench.scenarios import Scenario
from repro.bench.runner import _fingerprint

#: A scenario small enough for unit tests (sub-second end to end).
TINY = Scenario(
    name="tiny_smoke",
    kind="sampling",
    title="tiny smoke scenario (tests only)",
    maps_to="n/a",
    quick=dict(namespace=2_000, set_size=50, num_sets=2, family="murmur3",
               tree="static", accuracy=0.9, seed=1, workload_seed=2,
               queries=200, loop_queries=40, scalar_loop_queries=20),
    full=dict(namespace=4_000, set_size=100, num_sets=2, family="murmur3",
              tree="static", accuracy=0.9, seed=1, workload_seed=2,
              queries=400, loop_queries=80, scalar_loop_queries=40),
)

TINY_RECON = Scenario(
    name="tiny_recon",
    kind="reconstruction",
    title="tiny reconstruction scenario (tests only)",
    maps_to="n/a",
    quick=dict(namespace=2_000, set_size=50, num_sets=2, family="murmur3",
               tree="static", accuracy=0.9, seed=1, workload_seed=2,
               repeats=1, scalar_repeats=1, scalar_sets=1),
    full=dict(namespace=4_000, set_size=100, num_sets=3, family="murmur3",
              tree="static", accuracy=0.9, seed=1, workload_seed=2,
              repeats=1, scalar_repeats=1, scalar_sets=1),
)

TINY_SERVE = Scenario(
    name="tiny_serve",
    kind="serving",
    title="tiny serving scenario (tests only)",
    maps_to="n/a",
    quick=dict(namespace=2_000, set_size=50, num_sets=2, family="murmur3",
               tree="static", accuracy=0.9, seed=1, workload_seed=2,
               shards=2, requests=40, rounds=4, max_batch=64,
               max_delay_ms=1.0),
    full=dict(namespace=4_000, set_size=100, num_sets=3, family="murmur3",
              tree="static", accuracy=0.9, seed=1, workload_seed=2,
              shards=2, requests=80, rounds=4, max_batch=64,
              max_delay_ms=1.0),
)


@pytest.fixture()
def tiny_registry(monkeypatch):
    """Swap the scenario registry for the three tiny test scenarios."""
    registry = {TINY.name: TINY, TINY_RECON.name: TINY_RECON,
                TINY_SERVE.name: TINY_SERVE}
    monkeypatch.setattr("repro.bench.runner.SCENARIOS", registry)
    monkeypatch.setattr("repro.bench.scenarios.SCENARIOS", registry)
    return registry


class TestBenchRunner:
    def test_smoke_emits_both_files(self, tiny_registry, tmp_path):
        runner = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True)
        payloads = runner.run()
        assert set(payloads) == {"sampling", "reconstruction", "serving"}
        for kind, filename in BENCH_FILES.items():
            path = tmp_path / filename
            assert path.exists(), filename
            payload = json.loads(path.read_text())
            assert validate_payload(payload) == []
            assert payload["schema"] == SCHEMA_VERSION
            assert payload["mode"] == "quick"

    def test_second_run_hits_cache(self, tiny_registry, tmp_path):
        runner = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True)
        first = runner.run()
        assert not any(
            entry["cached"]
            for payload in first.values()
            for entry in payload["scenarios"].values()
        )
        second = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True).run()
        assert all(
            entry["cached"]
            for payload in second.values()
            for entry in payload["scenarios"].values()
        )
        # Cached results carry the same measurements.
        for kind in first:
            for name in first[kind]["scenarios"]:
                assert (first[kind]["scenarios"][name]["result"]
                        == second[kind]["scenarios"][name]["result"])

    def test_force_reruns(self, tiny_registry, tmp_path):
        BenchRunner(cache_dir=tmp_path / "cache", output_dir=tmp_path,
                    quick=True).run()
        forced = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True,
                             force=True).run()
        assert not any(
            entry["cached"]
            for payload in forced.values()
            for entry in payload["scenarios"].values()
        )

    def test_parameter_edit_invalidates_cache(self, tiny_registry, tmp_path,
                                              monkeypatch):
        runner = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True)
        runner.run(["tiny_smoke"])
        edited = Scenario(
            name=TINY.name, kind=TINY.kind, title=TINY.title,
            maps_to=TINY.maps_to,
            quick=dict(TINY.quick, queries=300), full=TINY.full,
        )
        tiny_registry[TINY.name] = edited
        entry = BenchRunner(cache_dir=tmp_path / "cache",
                            output_dir=tmp_path,
                            quick=True).run(["tiny_smoke"])
        assert not entry["sampling"]["scenarios"]["tiny_smoke"]["cached"]

    def test_unknown_scenario_raises(self, tiny_registry, tmp_path):
        runner = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True)
        with pytest.raises(ValueError, match="unknown benchmark scenario"):
            runner.run(["no_such_scenario"])

    def test_quick_and_full_cache_separately(self, tiny_registry, tmp_path):
        quick = BenchRunner(cache_dir=tmp_path / "cache",
                            output_dir=tmp_path, quick=True)
        quick.run(["tiny_smoke"])
        full = BenchRunner(cache_dir=tmp_path / "cache",
                           output_dir=tmp_path, quick=False)
        entry = full.run(["tiny_smoke"])
        assert not entry["sampling"]["scenarios"]["tiny_smoke"]["cached"]

    def test_result_fields(self, tiny_registry, tmp_path):
        payloads = BenchRunner(cache_dir=tmp_path / "cache",
                               output_dir=tmp_path, quick=True).run()
        sampling = payloads["sampling"]["scenarios"]["tiny_smoke"]["result"]
        assert sampling["queries"] == 200
        assert sampling["batch"]["per_query_us"] > 0
        assert "speedup_batch_vs_scalar_loop" in sampling
        recon = (payloads["reconstruction"]["scenarios"]["tiny_recon"]
                 ["result"])
        assert recon["identical_to_sequential"] is True
        assert recon["batch"]["recovered"] > 0
        serving = payloads["serving"]["scenarios"]["tiny_serve"]["result"]
        assert serving["identical_to_naive"] is True
        assert serving["requests"] == 40
        assert serving["coalesced"]["errors"] == 0
        assert serving["coalesced"]["served"] == 40
        assert serving["speedup_coalesced_vs_naive"] > 0


class TestBenchHistory:
    def test_run_appends_history_entries(self, tiny_registry, tmp_path):
        from repro.bench import HISTORY_FILE, HISTORY_SCHEMA, load_history

        runner = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True)
        runner.run(["tiny_smoke"])
        runner.run(["tiny_smoke", "tiny_recon"])
        history = load_history(tmp_path / HISTORY_FILE)
        assert history["schema"] == HISTORY_SCHEMA
        assert len(history["runs"]) == 2
        first, second = history["runs"]
        assert set(first["scenarios"]) == {"tiny_smoke"}
        assert set(second["scenarios"]) == {"tiny_smoke", "tiny_recon"}
        # Headline numbers are copied into the trajectory entry.
        smoke = second["scenarios"]["tiny_smoke"]
        assert smoke["kind"] == "sampling"
        assert "speedup_batch_vs_scalar_loop" in smoke
        assert smoke["cached"] is True  # second run served from cache
        for entry in history["runs"]:
            assert entry["mode"] == "quick"
            assert entry["version"]

    def test_corrupt_history_is_replaced_not_fatal(self, tiny_registry,
                                                   tmp_path):
        from repro.bench import HISTORY_FILE, load_history

        (tmp_path / HISTORY_FILE).write_text("{not json")
        BenchRunner(cache_dir=tmp_path / "cache", output_dir=tmp_path,
                    quick=True).run(["tiny_smoke"])
        history = load_history(tmp_path / HISTORY_FILE)
        assert len(history["runs"]) == 1


class TestBenchCLI:
    def test_smoke_run_writes_files(self, tiny_registry, tmp_path, capsys):
        rc = main(["bench", "--quick",
                   "--cache-dir", str(tmp_path / "cache"),
                   "--output-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tiny_smoke" in out
        assert "BENCH_sampling.json" in out
        for filename in BENCH_FILES.values():
            assert (tmp_path / filename).exists()

    def test_cache_hit_reported(self, tiny_registry, tmp_path, capsys):
        args = ["bench", "--quick", "--scenario", "tiny_smoke",
                "--cache-dir", str(tmp_path / "cache"),
                "--output-dir", str(tmp_path)]
        main(args)
        capsys.readouterr()
        main(args)
        assert "cached" in capsys.readouterr().out

    def test_scenario_filter_writes_only_that_kind(self, tiny_registry,
                                                   tmp_path):
        main(["bench", "--quick", "--scenario", "tiny_recon",
              "--cache-dir", str(tmp_path / "cache"),
              "--output-dir", str(tmp_path)])
        assert (tmp_path / BENCH_FILES["reconstruction"]).exists()
        assert not (tmp_path / BENCH_FILES["sampling"]).exists()

    def test_list_prints_registry(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_exits_with_error(self, tiny_registry,
                                               tmp_path):
        with pytest.raises(SystemExit, match="unknown benchmark scenario"):
            main(["bench", "--quick", "--scenario", "nope",
                  "--cache-dir", str(tmp_path / "cache"),
                  "--output-dir", str(tmp_path)])

    def test_compare_prints_speedup_trajectory(self, tiny_registry,
                                               tmp_path, capsys):
        args = ["bench", "--quick", "--scenario", "tiny_smoke",
                "--cache-dir", str(tmp_path / "cache"),
                "--output-dir", str(tmp_path)]
        main(args)
        main(args + ["--force"])
        capsys.readouterr()
        rc = main(["bench", "--compare", "--output-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "tiny_smoke speedup_batch_vs_scalar_loop" in out
        # One aligned column per recorded run, headed by its version.
        from repro import __version__
        assert out.count(f"v{__version__}[q]") == 2

    def test_compare_csv_exports_long_form(self, tiny_registry,
                                           tmp_path, capsys):
        args = ["bench", "--quick", "--scenario", "tiny_smoke",
                "--cache-dir", str(tmp_path / "cache"),
                "--output-dir", str(tmp_path)]
        main(args)
        main(args + ["--force"])
        capsys.readouterr()
        csv_path = tmp_path / "trajectory.csv"
        rc = main(["bench", "--compare", "--output-dir", str(tmp_path),
                   "--csv", str(csv_path)])
        assert rc == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == ("run,generated_at,version,mode,scenario,"
                            "metric,value")
        # 2 runs x (scalar + vector) speedup metrics.
        assert len(lines) == 1 + 4
        assert any("tiny_smoke,speedup_batch_vs_scalar_loop" in line
                   for line in lines[1:])

    def test_compare_without_history_fails(self, tmp_path, capsys):
        rc = main(["bench", "--compare", "--output-dir", str(tmp_path)])
        assert rc == 1
        assert "no benchmark history" in capsys.readouterr().err

    def test_compare_with_empty_history_reports_no_runs(self, tmp_path,
                                                        capsys):
        from repro.bench import HISTORY_FILE, HISTORY_SCHEMA

        (tmp_path / HISTORY_FILE).write_text(
            json.dumps({"schema": HISTORY_SCHEMA, "runs": []}))
        rc = main(["bench", "--compare", "--output-dir", str(tmp_path)])
        assert rc == 1
        assert "no runs recorded" in capsys.readouterr().out


class TestSchemaValidation:
    def test_rejects_non_dict(self):
        assert validate_payload([]) == ["payload is not an object"]

    def test_rejects_wrong_schema_and_kind(self):
        errors = validate_payload(
            {"schema": 99, "kind": "nope", "mode": "quick",
             "scenarios": {"x": {}}})
        assert any("schema" in e for e in errors)
        assert any("kind" in e for e in errors)

    def test_rejects_missing_entry_fields(self):
        payload = {
            "schema": SCHEMA_VERSION, "kind": "sampling", "mode": "quick",
            "scenarios": {"x": {"result": {}, "cached": False}},
        }
        errors = validate_payload(payload)
        assert any("fingerprint" in e for e in errors)

    def test_fingerprint_changes_with_params(self):
        edited = Scenario(
            name=TINY.name, kind=TINY.kind, title=TINY.title,
            maps_to=TINY.maps_to,
            quick=dict(TINY.quick, queries=999), full=TINY.full,
        )
        assert (_fingerprint(TINY, True) != _fingerprint(edited, True))
        assert (_fingerprint(TINY, True) != _fingerprint(TINY, False))


class TestRegisteredScenarios:
    def test_registry_is_well_formed(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.kind in BENCH_FILES
            # Params must be JSON-able (they are fingerprinted).
            json.dumps(scenario.quick)
            json.dumps(scenario.full)

    def test_acceptance_scenario_present(self):
        """The 10k-query scenario the acceptance criteria point at."""
        scenario = SCENARIOS["sampling_10k"]
        assert scenario.quick["queries"] == 10_000
        assert scenario.full["queries"] == 10_000


class TestWriteChurnScenario:
    def test_registered_with_churn_knobs(self):
        scenario = SCENARIOS["write_churn_compiled"]
        assert scenario.kind == "sampling"
        for params in (scenario.quick, scenario.full):
            assert params["write_churn"] is True
            assert 0.0 < params["churn_fraction"] <= 0.10
            assert params["churn_repeats"] >= 1
            assert params["tree"] == "dynamic"
