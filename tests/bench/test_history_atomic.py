"""Regression tests: BENCH file emission is atomic (temp + rename).

``BENCH_history.json`` is the only copy of every earlier run's numbers;
the pre-fix appender truncated it with a plain ``write_text`` before the
new bytes landed, so a crash (or a concurrent ``repro bench``) in that
window destroyed the whole cross-PR trajectory.  These tests pin the
fix: a failed write — at any stage — leaves the previous document
intact, readers never observe a torn file, and nothing leaks temp
litter into the output directory.
"""

import json
import os
import threading

import pytest

from repro.bench import HISTORY_FILE, HISTORY_SCHEMA, atomic_write_json
from repro.bench.runner import load_history


def _history(n_runs: int) -> dict:
    return {"schema": HISTORY_SCHEMA,
            "runs": [{"version": f"1.{i}.0", "mode": "quick",
                      "scenarios": {}} for i in range(n_runs)]}


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / HISTORY_FILE
        atomic_write_json(path, _history(2))
        assert load_history(path)["runs"][1]["version"] == "1.1.0"
        assert path.read_text().endswith("\n")

    def test_overwrites_in_place(self, tmp_path):
        path = tmp_path / HISTORY_FILE
        atomic_write_json(path, _history(1))
        atomic_write_json(path, _history(3))
        assert len(load_history(path)["runs"]) == 3

    def test_crash_during_rename_preserves_old_document(self, tmp_path,
                                                        monkeypatch):
        path = tmp_path / HISTORY_FILE
        atomic_write_json(path, _history(2))
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_json(path, _history(5))
        # The pre-fix appender would have left a truncated/partial file
        # here; the atomic writer must leave the old document untouched.
        assert path.read_text() == before
        assert json.loads(path.read_text())["schema"] == HISTORY_SCHEMA

    def test_crash_during_temp_write_preserves_old_document(self, tmp_path,
                                                            monkeypatch):
        import pathlib

        path = tmp_path / HISTORY_FILE
        atomic_write_json(path, _history(2))
        before = path.read_text()

        real_write_text = pathlib.Path.write_text

        def exploding_write_text(self, text, *args, **kwargs):
            if ".tmp." in self.name:
                raise OSError(28, "No space left on device")
            return real_write_text(self, text, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "write_text",
                            exploding_write_text)
        with pytest.raises(OSError):
            atomic_write_json(path, _history(5))
        assert path.read_text() == before

    def test_no_temp_litter_after_failure(self, tmp_path, monkeypatch):
        path = tmp_path / HISTORY_FILE
        atomic_write_json(path, _history(1))

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_json(path, _history(2))
        assert [p.name for p in tmp_path.iterdir()] == [HISTORY_FILE]

    def test_concurrent_readers_never_see_a_torn_file(self, tmp_path):
        """Writer loop + reader loop: every read parses completely."""
        path = tmp_path / HISTORY_FILE
        atomic_write_json(path, _history(1))
        stop = threading.Event()
        torn: list[Exception] = []

        def reader():
            while not stop.is_set():
                try:
                    document = json.loads(path.read_text())
                except ValueError as exc:  # a torn read — the regression
                    torn.append(exc)
                    return
                assert document["schema"] == HISTORY_SCHEMA

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for i in range(200):
                atomic_write_json(path, _history(i % 7 + 1))
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not torn, f"reader saw a torn history file: {torn[0]}"


class TestRunnerUsesAtomicWrites:
    def test_history_append_goes_through_atomic_writer(self, tmp_path,
                                                       monkeypatch):
        """The appender itself must route through atomic_write_json."""
        from repro.bench import runner as runner_module
        from repro.bench.runner import BenchRunner

        calls = []
        real = runner_module.atomic_write_json

        def spying(path, obj, **kwargs):
            calls.append(str(path))
            return real(path, obj, **kwargs)

        monkeypatch.setattr(runner_module, "atomic_write_json", spying)
        runner = BenchRunner(cache_dir=tmp_path / "cache",
                             output_dir=tmp_path, quick=True)
        runner._append_history({})
        assert any(call.endswith(HISTORY_FILE) for call in calls)
        assert load_history(tmp_path / HISTORY_FILE)["runs"]
