"""End-to-end pipelines exercising the public API exactly as a user would."""

import numpy as np
import pytest

from repro import (
    BloomFilter,
    BloomSampleTree,
    BSTReconstructor,
    BSTSampler,
    DictionaryAttack,
    ExactUniformSampler,
    HashInvert,
    PrunedBloomSampleTree,
    clustered_query_set,
    create_family,
    family_for_parameters,
    measured_accuracy,
    plan_tree,
    uniform_query_set,
)

M = 50_000
N = 400


class TestPlannedPipeline:
    """plan_tree -> build -> sample/reconstruct, per the README quickstart."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        params = plan_tree(M, N, accuracy=0.95)
        family = family_for_parameters(params, "murmur3", seed=21)
        tree = BloomSampleTree.build(M, params.depth, family)
        secret = uniform_query_set(M, N, rng=21)
        query = BloomFilter.from_items(secret, family)
        return params, tree, secret, query

    def test_planned_accuracy_is_met(self, pipeline):
        params, tree, secret, query = pipeline
        sampler = BSTSampler(tree, rng=1)
        samples = [sampler.sample(query).value for __ in range(300)]
        accuracy = measured_accuracy(samples, secret)
        assert accuracy >= params.target_accuracy - 0.07

    def test_sampling_beats_dictionary_attack_in_ops(self, pipeline):
        __, tree, _s, query = pipeline
        bst_ops = BSTSampler(tree, rng=2).sample(query).ops
        da_ops = DictionaryAttack(M, rng=2).sample(query).ops
        bst_cost = bst_ops.memberships + bst_ops.intersections * tree.family.m / 64
        assert bst_cost < da_ops.memberships / 5

    def test_reconstruction_roundtrip(self, pipeline):
        __, tree, secret, query = pipeline
        exact = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        assert set(secret.tolist()) <= set(exact.elements.tolist())
        # The estimator-guided variant trades recall for membership cost;
        # at this SNR it must still recover the bulk of the set.
        pruned = BSTReconstructor(tree).reconstruct(query)
        recovered = set(pruned.elements.tolist())
        assert len(set(secret.tolist()) & recovered) >= 0.7 * N
        assert pruned.ops.memberships <= exact.ops.memberships

    def test_multi_sample_one_pass(self, pipeline):
        __, tree, secret, query = pipeline
        sampler = BSTSampler(tree, rng=3)
        result = sampler.sample_many(query, 100, replacement=False)
        truth = set(secret.tolist())
        assert len(result.values) >= 90
        assert sum(v in truth for v in result.values) >= 0.9 * len(result.values)


class TestClusteredCommunityScenario:
    """The paper's motivating workload: clustered (community) id sets."""

    @pytest.fixture(scope="class")
    def scenario(self):
        params = plan_tree(M, N, accuracy=0.9)
        family = family_for_parameters(params, "murmur3", seed=4)
        tree = BloomSampleTree.build(M, params.depth, family)
        secret = clustered_query_set(M, N, rng=4)
        query = BloomFilter.from_items(secret, family)
        return tree, secret, query

    def test_reconstruction_prunes_hard(self, scenario):
        tree, secret, query = scenario
        result = BSTReconstructor(tree).reconstruct(query)
        # Clustered sets let the tree skip most of the namespace.
        assert result.ops.memberships < M / 3
        recovered = set(result.elements.tolist())
        assert len(set(secret.tolist()) & recovered) >= 0.9 * N

    def test_exact_sampler_uniform_over_recovered(self, scenario):
        from repro.analysis.uniformity import (chi_squared_uniformity,
                                               sample_counts)
        tree, secret, query = scenario
        sampler = ExactUniformSampler(tree, rng=5, exhaustive=True)
        draws = [sampler.sample(query).value for __ in range(N * 40)]
        counts = sample_counts(draws, secret)
        assert (counts > 0).all()
        __, p = chi_squared_uniformity(counts)
        assert p > 0.005


class TestInvertibleFamilyAgreement:
    """All three reconstruction algorithms agree on S u S(B)."""

    def test_three_way_agreement(self):
        family = create_family("simple", 3, 32_768, namespace_size=M, seed=9)
        secret = uniform_query_set(M, N, rng=9)
        query = BloomFilter.from_items(secret, family)

        tree = BloomSampleTree.build(M, 6, family)
        bst = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        da, __ = DictionaryAttack(M).reconstruct(query)
        hi, __ = HashInvert(M).reconstruct(query)
        np.testing.assert_array_equal(bst.elements, da)
        np.testing.assert_array_equal(np.sort(hi), da)


class TestPrunedTreeScenario:
    """Section 8: sparse occupancy of a large namespace."""

    def test_sparse_pipeline(self):
        namespace = 1 << 22  # 4M ids
        occupied = uniform_query_set(namespace, 3_000, rng=6)
        family = create_family("murmur3", 3, 65_536,
                               namespace_size=namespace, seed=6)
        tree = PrunedBloomSampleTree.build(occupied, namespace, 8, family)
        full_nodes = (1 << 9) - 1
        assert tree.num_nodes <= full_nodes

        subset = occupied[::10]
        query = BloomFilter.from_items(subset, family)
        sampler = BSTSampler(tree, rng=6)
        truth = set(subset.tolist())
        hits = 0
        for __ in range(100):
            value = sampler.sample(query).value
            assert value is not None
            hits += value in truth
        assert hits >= 90  # sparse occupancy boosts effective accuracy

        result = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        # Reconstruction over occupied ids only: every true element found,
        # cost bounded by the occupied population, not the namespace.
        assert set(subset.tolist()) <= set(result.elements.tolist())
        assert result.ops.memberships <= len(occupied)

    def test_dynamic_growth_matches_rebuild(self):
        namespace = 1 << 16
        family = create_family("murmur3", 3, 16_384,
                               namespace_size=namespace, seed=7)
        first = uniform_query_set(namespace, 200, rng=7)
        tree = PrunedBloomSampleTree.build(first, namespace, 6, family)
        newcomers = uniform_query_set(namespace, 100, rng=8)
        tree.insert_many(newcomers)
        rebuilt = PrunedBloomSampleTree.build(
            np.union1d(first, newcomers), namespace, 6, family)
        assert tree.num_nodes == rebuilt.num_nodes
        query = BloomFilter.from_items(newcomers[:50], family)
        a = BSTReconstructor(tree, exhaustive=True).reconstruct(query)
        b = BSTReconstructor(rebuilt, exhaustive=True).reconstruct(query)
        np.testing.assert_array_equal(a.elements, b.elements)
