"""The epoch-versioned mutation pipeline of :class:`~repro.api.BloomDB`.

What the tentpole promises: occupancy mutations on a compiled engine
publish immutable :class:`~repro.api.EngineEpoch` snapshots behind one
atomic reference swap; compiled sampling keeps routing through
``descend_frontier`` (never a recompile, never the object-tree
fallback) while staying bit-identical to a from-scratch rebuild; and
``compact()`` folds the overlay away without changing a single bit.
"""

import threading

import numpy as np
import pytest

from repro.api import BloomDB, EngineConfig, SampleSpec
from repro.core import plan as plan_module

NAMESPACE = 12_000


def build_db(mutation: str = "delta", tree: str = "dynamic",
             compact_threshold: float = 0.5,
             occupied=None, install_from=None) -> BloomDB:
    rng = np.random.default_rng(9)
    if occupied is None:
        occupied = np.sort(rng.choice(NAMESPACE, 1_500,
                                      replace=False).astype(np.uint64))
    db = BloomDB(EngineConfig(
        namespace_size=NAMESPACE, accuracy=0.9, set_size=200,
        tree=tree, plan="compiled", mutation=mutation,
        compact_threshold=compact_threshold, seed=5), occupied=occupied)
    if install_from is not None:
        for name in install_from.names():
            db.store.install(name, install_from.filter(name).copy())
    else:
        for i in range(4):
            db.add_set(f"s{i}", rng.choice(occupied, 200, replace=False))
    return db


def specs(seed_base: int = 0):
    return [SampleSpec(f"s{i}", 12, seed=seed_base + i, key=str(i))
            for i in range(4)]


def churn(db, seed: int = 1):
    rng = np.random.default_rng(seed)
    occupied = np.array(db.occupied)
    free = np.setdiff1d(np.arange(NAMESPACE, dtype=np.uint64), occupied)
    victims = rng.choice(occupied, 120, replace=False)
    fresh = rng.choice(free, 120, replace=False)
    db.retire_ids(victims)
    db.insert_ids(fresh)
    return victims, fresh


class TestEpochPublication:
    def test_epoch_ids_are_monotonic(self):
        db = build_db(compact_threshold=10.0)
        first = db.current_epoch()
        churn(db)
        second = db.current_epoch()
        assert second.epoch > first.epoch
        assert second.plan is first.plan  # same base, new delta
        assert second.delta is not None and not second.delta.is_empty

    def test_readers_pin_their_epoch(self):
        db = build_db()
        pinned = db.current_epoch()
        view_before = pinned.view()
        churn(db)
        # The pinned epoch (and its effective view) is untouched by the
        # mutation published behind it.
        assert pinned.view() is view_before
        assert db.current_epoch() is not pinned

    def test_mutation_never_recompiles_in_delta_mode(self, monkeypatch):
        db = build_db(mutation="delta", compact_threshold=10.0)
        db.current_epoch()
        calls = []
        original = plan_module.CompiledTree.from_tree.__func__

        def counting_from_tree(cls, tree):
            calls.append(tree)
            return original(cls, tree)

        monkeypatch.setattr(plan_module.CompiledTree, "from_tree",
                            classmethod(counting_from_tree))
        churn(db)
        report = db.sample_many(specs())
        assert report.produced > 0
        assert not calls  # sampled through base ⊕ delta, no recompile

    def test_invalidate_mode_recompiles(self, monkeypatch):
        db = build_db(mutation="invalidate")
        db.current_epoch()
        calls = []
        original = plan_module.CompiledTree.from_tree.__func__

        def counting_from_tree(cls, tree):
            calls.append(tree)
            return original(cls, tree)

        monkeypatch.setattr(plan_module.CompiledTree, "from_tree",
                            classmethod(counting_from_tree))
        churn(db)
        db.sample_many(specs())
        assert len(calls) == 1


class TestBitIdentity:
    def test_churned_engine_matches_from_scratch_rebuild(self):
        db = build_db()
        db.current_epoch()
        churn(db)
        churn(db, seed=2)
        rebuilt = build_db(occupied=np.array(db.occupied), install_from=db)
        got = db.sample_many(specs(100))
        want = rebuilt.sample_many(specs(100))
        for i in range(4):
            assert got[str(i)].values == want[str(i)].values
            assert got[str(i)].ops == want[str(i)].ops

    def test_delta_and_invalidate_modes_agree(self):
        delta_db = build_db(mutation="delta")
        invalidate_db = build_db(mutation="invalidate")
        for db in (delta_db, invalidate_db):
            db.current_epoch()
            churn(db)
        got = delta_db.sample_many(specs(7))
        want = invalidate_db.sample_many(specs(7))
        for i in range(4):
            assert got[str(i)].values == want[str(i)].values
            assert got[str(i)].ops == want[str(i)].ops

    def test_compact_is_bit_invisible(self):
        db = build_db(compact_threshold=10.0)  # no auto-compaction
        db.current_epoch()
        churn(db)
        before = db.sample_many(specs(3))
        epoch = db.current_epoch()
        assert epoch.delta is not None and not epoch.delta.is_empty
        db.compact()
        after_epoch = db.current_epoch()
        assert after_epoch.epoch > epoch.epoch
        assert after_epoch.delta is None
        after = db.sample_many(specs(3))
        for i in range(4):
            assert before[str(i)].values == after[str(i)].values
            assert before[str(i)].ops == after[str(i)].ops


class TestCompaction:
    def test_auto_compact_on_threshold(self):
        db = build_db(compact_threshold=0.01)
        db.current_epoch()
        churn(db)
        epoch = db.current_epoch()
        assert epoch.delta is None  # density crossed 0.01 -> compacted

    def test_compact_to_path_promotes_the_mmap(self, tmp_path):
        db = build_db(compact_threshold=10.0)
        db.current_epoch()
        churn(db)
        path = tmp_path / "plan.bst"
        fresh = db.compact(path)
        assert path.exists()
        assert not fresh.words.flags.writeable  # served plan is the map
        assert db.current_epoch().plan is fresh

    def test_save_folds_pending_delta(self, tmp_path):
        db = build_db(compact_threshold=10.0)
        db.current_epoch()
        churn(db)
        db.save(tmp_path / "engine")
        loaded = BloomDB.load(tmp_path / "engine")
        got = loaded.sample_many(specs(5))
        want = db.sample_many(specs(5))
        for i in range(4):
            assert got[str(i)].values == want[str(i)].values


class TestConcurrency:
    def test_concurrent_reads_during_mutations(self):
        """Readers never block, never crash, and every batch is
        internally consistent while a writer churns the engine."""
        db = build_db(compact_threshold=0.4)
        db.current_epoch()
        errors = []
        stop = threading.Event()

        def reader():
            i = 0
            while not stop.is_set():
                try:
                    report = db.sample_many(specs(i))
                    assert report.produced >= 0
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for seed in range(8):
                churn(db, seed=seed + 10)
        finally:
            stop.set()
            for thread in threads:
                thread.join(10)
        assert not errors


class TestConfig:
    def test_mutation_knob_validation(self):
        with pytest.raises(ValueError, match="mutation"):
            EngineConfig(namespace_size=1_000, mutation="nope")
        with pytest.raises(ValueError, match="compact_threshold"):
            EngineConfig(namespace_size=1_000, compact_threshold=0.0)

    def test_knobs_roundtrip_through_save(self):
        config = EngineConfig(namespace_size=1_000, mutation="invalidate",
                              compact_threshold=0.25)
        assert EngineConfig.from_dict(config.to_dict()) == config


class TestChainBound:
    def test_hot_churn_bounds_the_epoch_chain(self):
        """Churn that re-dirties the same slots never raises density, so
        the chain-length cap must fold the overlay instead (regression:
        unbounded parent_frontier chains crashed frontier inheritance
        with RecursionError after ~1600 localized mutations)."""
        from repro.core.delta import MAX_EPOCH_CHAIN

        db = build_db(compact_threshold=10.0)
        db.current_epoch()
        hot = np.array(db.occupied)[:5]
        for _ in range(MAX_EPOCH_CHAIN + 10):
            db.retire_ids(hot)
            db.insert_ids(hot)
        epoch = db.current_epoch()
        assert (epoch.delta is None
                or epoch.delta.chain_length < MAX_EPOCH_CHAIN)
        # and a fresh-query read still works (no inheritance recursion)
        report = db.sample_many(specs(999))
        assert report.produced >= 0
