"""EngineConfig validation, resolution and persistence."""

import pytest

from repro.api import EngineConfig
from repro.core.design import plan_tree


class TestValidation:
    def test_defaults_valid(self):
        config = EngineConfig(namespace_size=10_000)
        assert config.tree == "static"
        assert config.family == "murmur3"

    @pytest.mark.parametrize("kwargs", [
        {"namespace_size": 1},
        {"namespace_size": 10_000, "accuracy": 0.0},
        {"namespace_size": 10_000, "accuracy": 1.5},
        {"namespace_size": 10_000, "set_size": 0},
        {"namespace_size": 10_000, "set_size": 10_000},
        {"namespace_size": 10_000, "family": "sha256"},
        {"namespace_size": 10_000, "tree": "btree"},
        {"namespace_size": 10_000, "threshold": -0.1},
        {"namespace_size": 10_000, "descent": "random"},
        {"namespace_size": 10_000, "k": 0},
        {"namespace_size": 10_000, "depth": -1},
        {"namespace_size": 16, "depth": 5},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_frozen(self):
        config = EngineConfig(namespace_size=10_000)
        with pytest.raises(Exception):
            config.accuracy = 0.5


class TestResolution:
    def test_matches_planner(self):
        config = EngineConfig(namespace_size=100_000, accuracy=0.9,
                              set_size=500)
        params = config.parameters()
        direct = plan_tree(100_000, 500, 0.9, k=3)
        assert params == direct

    def test_default_set_size(self):
        config = EngineConfig(namespace_size=100_000)
        assert config.planned_set_size == 1_000
        tiny = EngineConfig(namespace_size=100)
        assert tiny.planned_set_size == 50

    def test_depth_override(self):
        base = EngineConfig(namespace_size=100_000, set_size=500)
        override = EngineConfig(namespace_size=100_000, set_size=500,
                                depth=3)
        assert base.parameters().depth != 3
        params = override.parameters()
        assert params.depth == 3
        assert params.m == base.parameters().m  # m untouched by depth
        assert params.leaf_capacity >= 100_000 // (1 << 3)

    def test_build_family(self):
        config = EngineConfig(namespace_size=10_000, family="simple",
                              seed=11)
        family = config.build_family()
        assert family.name == "simple"
        assert family.seed == 11
        assert family.m == config.parameters().m


class TestPersistence:
    def test_round_trip(self):
        config = EngineConfig(namespace_size=50_000, accuracy=0.8,
                              set_size=200, family="md5", tree="dynamic",
                              threshold=0.75, descent="floored", seed=9,
                              depth=4)
        clone = EngineConfig.from_dict(config.to_dict())
        assert clone == config

    def test_dict_is_json_friendly(self):
        import json

        config = EngineConfig(namespace_size=50_000, tree="pruned")
        text = json.dumps(config.to_dict())
        assert EngineConfig.from_dict(json.loads(text)) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown EngineConfig keys"):
            EngineConfig.from_dict({"namespace_size": 10_000,
                                    "shards": 4})

    def test_describe_includes_resolved(self):
        info = EngineConfig(namespace_size=50_000).describe()
        assert info["m"] > 0
        assert info["tree_nodes"] >= 1
        assert info["namespace_size"] == 50_000
