"""SampleSpec batches: the per-request-seeded engine hook of ISSUE 3."""

import numpy as np
import pytest

from repro.api import BloomDB, SampleSpec


@pytest.fixture(scope="module")
def db():
    engine = BloomDB.plan(namespace_size=5_000, accuracy=0.9, set_size=100,
                          seed=2)
    rng = np.random.default_rng(8)
    for i in range(4):
        engine.add_set(f"s{i}", rng.choice(5_000, 100,
                                           replace=False).astype(np.uint64))
    return engine


class TestSpecBatches:
    def test_report_keys_and_order(self, db):
        specs = [SampleSpec("s0", 2, seed=1), SampleSpec("s1", 3, seed=2),
                 SampleSpec("s0", 4, seed=3, key="again")]
        report = db.sample_many(specs)
        assert list(report.results) == ["0:s0", "1:s1", "again"]
        assert [len(r.values) for r in report.ordered()] == [2, 3, 4]

    def test_seeded_specs_are_independent_of_batch_composition(self, db):
        alone = db.sample_many([SampleSpec("s2", 5, seed=77)]).ordered()[0]
        crowded = db.sample_many(
            [SampleSpec("s0", 8, seed=1), SampleSpec("s2", 5, seed=77),
             SampleSpec("s3", 2, seed=9)]).ordered()[1]
        assert alone.values == crowded.values
        # Op accounting is batch-independent too.
        assert alone.ops.intersections == crowded.ops.intersections
        assert alone.ops.memberships == crowded.ops.memberships

    def test_seeded_spec_matches_store_level_seeded_call(self, db):
        spec_result = db.sample_many(
            [SampleSpec("s1", 6, seed=123)]).ordered()[0]
        direct = db.store.sample_many("s1", 6, rng=123)
        assert spec_result.values == direct.values

    def test_unseeded_specs_draw_from_shared_stream(self, db):
        # Without seeds, two identical batches differ (shared stream
        # advances) — the legacy behaviour name-based batches rely on.
        first = db.sample_many([SampleSpec("s0", 16)]).ordered()[0]
        second = db.sample_many([SampleSpec("s0", 16)]).ordered()[0]
        assert first.requested == second.requested == 16

    def test_replacement_false_respected(self, db):
        result = db.sample_many(
            [SampleSpec("s3", 50, replacement=False, seed=4)]).ordered()[0]
        assert len(result.values) == len(set(result.values))


class TestSpecValidation:
    def test_non_positive_rounds_rejected(self):
        with pytest.raises(ValueError):
            SampleSpec("x", 0)

    def test_mixed_specs_and_names_rejected(self, db):
        with pytest.raises(TypeError):
            db.sample_many([SampleSpec("s0", 1, seed=1), "s1"])
        # Order-independent: a name first must not coerce specs to names.
        with pytest.raises(TypeError):
            db.sample_many(["s1", SampleSpec("s0", 1, seed=1)])

    def test_duplicate_keys_rejected(self, db):
        with pytest.raises(ValueError):
            db.sample_many([SampleSpec("s0", 1, key="k"),
                            SampleSpec("s1", 1, key="k")])

    def test_unknown_set_raises_keyerror(self, db):
        with pytest.raises(KeyError):
            db.sample_many([SampleSpec("nope", 1, seed=1)])
