"""BloomDB facade: end-to-end behaviour, batching, persistence."""

import numpy as np
import pytest

from repro.api import (
    BackendCapabilityError,
    BatchReport,
    BloomDB,
    EngineConfig,
)
from repro.core import (
    DynamicBloomSampleTree,
    MultiSampleResult,
    SampleResult,
    backend_key_of,
)

M = 8_192
VARIANTS = ("static", "pruned", "dynamic")


def make_db(tree="static", **kwargs):
    kwargs.setdefault("namespace_size", M)
    kwargs.setdefault("accuracy", 0.98)
    kwargs.setdefault("set_size", 128)
    kwargs.setdefault("seed", 21)
    return BloomDB.plan(tree=tree, **kwargs)


@pytest.fixture()
def ids():
    rng = np.random.default_rng(21)
    return np.sort(rng.choice(M, size=128, replace=False)).astype(np.uint64)


class TestEndToEnd:
    """The acceptance criterion: plan -> add_set -> sample, per variant."""

    @pytest.mark.parametrize("tree", VARIANTS)
    def test_plan_add_sample_chain(self, tree, ids):
        truth = set(int(x) for x in ids)
        result = make_db(tree).add_set("community", ids).sample("community")
        assert isinstance(result, SampleResult)
        assert result.value in truth

    @pytest.mark.parametrize("tree", VARIANTS)
    def test_variant_selected_by_config_string(self, tree, ids):
        db = make_db(tree)
        assert backend_key_of(db.tree) == tree
        assert db.config.tree == tree

    @pytest.mark.parametrize("tree", VARIANTS)
    def test_multi_sample(self, tree, ids):
        db = make_db(tree).add_set("community", ids)
        result = db.sample("community", r=32)
        assert isinstance(result, MultiSampleResult)
        truth = set(int(x) for x in ids)
        hits = sum(v in truth for v in result.values)
        assert hits >= 0.9 * len(result.values)

    @pytest.mark.parametrize("tree", VARIANTS)
    def test_reconstruct(self, tree, ids):
        db = make_db(tree).add_set("community", ids)
        result = db.reconstruct("community", exhaustive=True)
        truth = set(int(x) for x in ids)
        assert truth <= set(int(x) for x in result.elements)

    def test_union_and_intersection(self, ids):
        db = make_db("static")
        db.add_set("a", ids[:80]).add_set("b", ids[40:])
        union_truth = set(int(x) for x in ids)
        overlap_truth = set(int(x) for x in ids[40:80])
        assert db.sample_union(["a", "b"]).value in union_truth
        value = db.sample_intersection(["a", "b"]).value
        # Intersection sketch: overwhelmingly a true overlap element.
        assert value in union_truth
        assert value in overlap_truth or value is not None


class TestSetManagement:
    def test_names_contains_len(self, ids):
        db = make_db().add_set("a", ids[:10]).add_set("b", ids[10:20])
        assert db.names() == ["a", "b"]
        assert "a" in db and "zzz" not in db
        assert len(db) == 2

    def test_extend_and_drop(self, ids):
        db = make_db().add_set("a", ids[:10])
        db.extend_set("a", ids[10:20])
        assert all(db.contains("a", int(x)) for x in ids[:20])
        db.drop_set("a")
        assert "a" not in db

    def test_duplicate_name_rejected(self, ids):
        db = make_db().add_set("a", ids)
        with pytest.raises(KeyError):
            db.add_set("a", ids)

    def test_occupancy_synced_for_pruned(self, ids):
        db = make_db("pruned")
        assert db.occupied.size == 0
        db.add_set("a", ids)
        assert set(db.occupied.tolist()) == set(int(x) for x in ids)

    def test_static_has_no_occupancy(self, ids):
        assert make_db("static").occupied is None


class TestCapabilities:
    def test_static_rejects_occupancy_updates(self):
        db = make_db("static")
        with pytest.raises(BackendCapabilityError):
            db.insert_ids([1, 2, 3])
        with pytest.raises(BackendCapabilityError):
            db.retire_ids([1])

    def test_pruned_inserts_but_never_removes(self):
        db = make_db("pruned").insert_ids([5, 6, 7])
        assert {5, 6, 7} <= set(db.occupied.tolist())
        with pytest.raises(BackendCapabilityError):
            db.retire_ids([5])

    def test_dynamic_full_lifecycle(self, ids):
        db = make_db("dynamic").add_set("live", ids)
        victims = ids[:30]
        db.retire_ids(victims)
        gone = set(int(x) for x in victims)
        recovered = db.reconstruct("live", exhaustive=True)
        assert not (gone & set(int(x) for x in recovered.elements))


class TestBatching:
    def test_sample_many_all_sets(self, ids):
        db = make_db().add_set("a", ids[:60]).add_set("b", ids[60:])
        report = db.sample_many(r=16)
        assert isinstance(report, BatchReport)
        assert set(report) == {"a", "b"}
        assert report.requested == 32
        assert len(report["a"].values) == 16

    def test_sample_many_merges_ops(self, ids):
        db = make_db().add_set("a", ids[:60]).add_set("b", ids[60:])
        report = db.sample_many(["a", "b"], r=8)
        per_set = (report["a"].ops.intersections
                   + report["b"].ops.intersections)
        assert report.ops.intersections == per_set
        assert report.ops.intersections > 0
        row = report.as_row()
        assert row["sets"] == 2 and row["requested"] == 16

    def test_sample_many_per_set_demand(self, ids):
        db = make_db().add_set("a", ids[:60]).add_set("b", ids[60:])
        report = db.sample_many({"a": 4, "b": 12})
        assert report["a"].requested == 4
        assert report["b"].requested == 12

    def test_sample_many_rejects_bad_rounds(self, ids):
        db = make_db().add_set("a", ids)
        with pytest.raises(ValueError):
            db.sample_many(r=0)
        with pytest.raises(ValueError):
            db.sample_many({"a": -1})

    def test_sample_many_statistically_matches_singles(self, ids):
        """Batched sampling draws from the same distribution as singles.

        Compare per-element empirical frequencies of one-pass batches
        against repeated single samples over the same stored set; means
        must agree within a few standard errors.
        """
        db = make_db().add_set("community", ids)
        draws = 600
        batched = []
        while len(batched) < draws:
            batched.extend(db.sample("community", r=50).values)
        singles = []
        while len(singles) < draws:
            result = db.sample("community")
            if result.value is not None:
                singles.append(result.value)
        truth = set(int(x) for x in ids)
        hit_batched = np.mean([v in truth for v in batched[:draws]])
        hit_singles = np.mean([v in truth for v in singles[:draws]])
        assert abs(hit_batched - hit_singles) < 0.05
        # Both spread over the whole set, not a starved corner of it.
        assert len(set(batched) & truth) > 0.5 * len(truth)
        assert len(set(singles) & truth) > 0.5 * len(truth)

    def test_reconstruct_all(self, ids):
        db = make_db().add_set("a", ids[:60]).add_set("b", ids[60:])
        report = db.reconstruct_all(exhaustive=True)
        assert set(report) == {"a", "b"}
        elements = report.elements
        assert set(int(x) for x in ids[:60]) <= set(
            int(x) for x in elements["a"])
        assert report.ops.memberships > 0
        assert report.produced == sum(r.size for r in report.results.values())


class TestPersistence:
    @pytest.mark.parametrize("tree", VARIANTS)
    def test_save_load_round_trip(self, tree, ids, tmp_path):
        db = make_db(tree, family="simple", seed=4)
        db.add_set("a", ids[:60]).add_set("b", ids[60:])
        db.save(tmp_path / "engine")

        loaded = BloomDB.load(tmp_path / "engine")
        # Config, family spec and tree variant survive.
        assert loaded.config == db.config
        assert loaded.family.name == "simple"
        assert backend_key_of(loaded.tree) == tree
        # Stored sets survive bit-for-bit.
        assert loaded.names() == ["a", "b"]
        for name in ("a", "b"):
            assert np.array_equal(loaded.filter(name).bits.words,
                                  db.filter(name).bits.words)
        # And the loaded engine still serves queries.
        truth = set(int(x) for x in ids[:60])
        assert loaded.sample("a").value in truth

    def test_load_rejects_bad_format(self, tmp_path):
        db = make_db()
        path = db.save(tmp_path / "engine")
        (path / "engine.json").write_text('{"format": 99, "config": {}}')
        with pytest.raises(ValueError, match="save format"):
            BloomDB.load(path)

    def test_dynamic_save_load_keeps_occupancy(self, ids, tmp_path):
        db = make_db("dynamic").add_set("a", ids)
        db.retire_ids(ids[:10])
        db.save(tmp_path / "engine")
        loaded = BloomDB.load(tmp_path / "engine")
        assert isinstance(loaded.tree, DynamicBloomSampleTree)
        assert np.array_equal(loaded.occupied, db.occupied)


class TestIntrospection:
    def test_describe(self, ids):
        db = make_db("pruned").add_set("a", ids)
        info = db.describe()
        assert info["sets"] == 1
        assert info["occupied"] == ids.size
        assert info["tree"] == "pruned"
        assert info["m"] == db.params.m

    def test_repr(self, ids):
        text = repr(make_db().add_set("a", ids))
        assert "BloomDB" in text and "sets=1" in text

    def test_from_config_equivalent_to_plan(self):
        config = EngineConfig(namespace_size=M, accuracy=0.98,
                              set_size=128, seed=21)
        a = BloomDB.from_config(config)
        b = make_db()
        assert a.config == b.config
        assert a.params == b.params

    def test_sampler_for_is_reproducible(self, ids):
        db = make_db().add_set("a", ids)
        query = db.filter("a")
        first = db.sampler_for(np.random.default_rng(7)).sample(query)
        second = db.sampler_for(np.random.default_rng(7)).sample(query)
        assert first.value == second.value
